//! The discrete-event coordinate-system simulator.
//!
//! The paper evaluates its enhancements in two ways that this simulator
//! unifies: a trace-driven simulator ("we built a simulator that accepted our
//! raw ping trace as input and mimicked the distributed behavior of
//! Vivaldi") and a live deployment in which the filtered and unfiltered
//! systems ran "on the same set of PlanetLab nodes at the same time, using
//! different ports". [`Simulator`] therefore runs **multiple named
//! configurations side by side on identical observation streams**: at every
//! probe the same raw RTT is handed to each configuration's node, so any
//! difference in the resulting metrics is attributable to the coordinate
//! stack alone.
//!
//! # The event model
//!
//! Time advances through a [`EventQueue`] of scheduled [`SimEvent`]s rather
//! than fixed steps, so probes are genuinely *in flight*: a probe sent at
//! `t` reaches its target half an RTT later (split asymmetrically when the
//! link model says so), the reply takes the other half back, and only then
//! does the prober's engine digest the observation. A probe or reply may be
//! dropped by the link's loss process or by an active network partition, in
//! which case the prober's timeout fires instead and the engine reports
//! [`Event::ProbeLost`] — the round-robin schedule keeps advancing either
//! way; nothing ever stalls on an unanswered probe.
//!
//! Probing follows the paper's protocol: every node samples its neighbour
//! set in round-robin order at a fixed interval, neighbour sets start small
//! and grow through gossip (each probe reply carries the address of one
//! other node the target knows about); a mid-run joiner announces itself to
//! its seed peers, as a deployment bootstrapping from a membership file
//! would.
//!
//! On top of the queue sits the [`Scenario`](crate::scenario) layer: nodes
//! can join mid-run (alone or as a flash crowd), leave gracefully, crash
//! and later restart from the [`NodeSnapshot`] taken at the instant of the
//! crash, and whole node groups or geographic regions can be partitioned
//! from the rest of the mesh until a heal time. Scenario actions apply
//! identically to every named configuration.
//!
//! The simulator is a *driver* of the sans-I/O engine: every probe runs the
//! full wire exchange — [`StableNode::probe_request_for`] →
//! [`StableNode::respond`] → stamp the sampled RTT into the
//! [`ProbeResponse`](nc_proto::ProbeResponse) →
//! [`StableNode::handle_response`] — and the metrics are folded from the
//! returned [`Event`] stream, exactly as a deployed daemon would consume
//! them. Timeouts run through [`StableNode::handle_timeout`], the same API a
//! daemon's timer wheel would call.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use nc_proto::{Event, NodeSnapshot, ProbeRequest, ProbeResponse};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stable_nc::{NodeConfig, StableNode};

use crate::linkmodel::LinkModel;
use crate::metrics::{ConfigMetrics, NodeMetrics, SimReport, TrackedCoordinate};
use crate::planetlab::PlanetLabConfig;
use crate::scenario::{Scenario, ScenarioAction};
use crate::topology::{RttMatrix, Topology};

/// An invalid [`SimConfig`], reported by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The total duration is not positive and finite.
    NonPositiveDuration(f64),
    /// The probe interval is not positive and finite.
    NonPositiveProbeInterval(f64),
    /// The probe interval exceeds the run duration (no node would probe).
    ProbeIntervalExceedsDuration {
        /// The configured interval.
        interval_s: f64,
        /// The configured duration.
        duration_s: f64,
    },
    /// The measurement window starts outside `[0, duration)`.
    MeasurementStartOutOfRange {
        /// The configured start.
        start_s: f64,
        /// The configured duration.
        duration_s: f64,
    },
    /// The trajectory-tracking interval is not positive and finite.
    NonPositiveTrackInterval(f64),
    /// The probe timeout is not positive and finite.
    NonPositiveProbeTimeout(f64),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveDuration(d) => {
                write!(f, "duration must be positive and finite, got {d}")
            }
            ConfigError::NonPositiveProbeInterval(i) => {
                write!(f, "probe interval must be positive and finite, got {i}")
            }
            ConfigError::ProbeIntervalExceedsDuration {
                interval_s,
                duration_s,
            } => write!(
                f,
                "probe interval {interval_s} s exceeds the run duration {duration_s} s"
            ),
            ConfigError::MeasurementStartOutOfRange {
                start_s,
                duration_s,
            } => write!(
                f,
                "measurement start {start_s} s lies outside the run [0, {duration_s}) s"
            ),
            ConfigError::NonPositiveTrackInterval(i) => {
                write!(f, "track interval must be positive and finite, got {i}")
            }
            ConfigError::NonPositiveProbeTimeout(t) => {
                write!(f, "probe timeout must be positive and finite, got {t}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Measurement schedule and protocol parameters of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated time in seconds.
    pub duration_s: f64,
    /// Interval between successive probes sent by one node (seconds); the
    /// paper's trace used 1 s, its deployment 5 s.
    pub probe_interval_s: f64,
    /// Metrics are only accumulated from this time onward (warm-up
    /// exclusion); the paper reports the second half of its runs.
    pub measurement_start_s: f64,
    /// How many other nodes each node knows at start-up.
    pub initial_neighbors: usize,
    /// Whether probe replies gossip one additional neighbour address.
    pub gossip: bool,
    /// Node indices whose coordinates are sampled over time (Figure 7).
    pub track_nodes: Vec<usize>,
    /// Interval between trajectory samples for tracked nodes (seconds).
    pub track_interval_s: f64,
    /// Seed for protocol-level randomness (gossip choices, initial neighbour
    /// sets). Independent of the workload seed.
    pub protocol_seed: u64,
    /// How long a prober waits for a reply before declaring the probe lost
    /// (seconds). Defaults to three probe intervals — far above any
    /// in-flight delay, so timeouts fire only for genuinely dropped packets
    /// and dead peers.
    pub probe_timeout_s: f64,
}

impl SimConfig {
    /// Creates a schedule with the given duration and probe interval; the
    /// measurement window defaults to the second half of the run, neighbour
    /// sets start with 8 members, gossip is enabled, and probes time out
    /// after three intervals.
    ///
    /// # Panics
    ///
    /// Panics when the combination fails [`SimConfig::validate`]. Build the
    /// struct literally and call `validate()` for a non-panicking path.
    pub fn new(duration_s: f64, probe_interval_s: f64) -> Self {
        SimConfig {
            duration_s,
            probe_interval_s,
            measurement_start_s: duration_s / 2.0,
            initial_neighbors: 8,
            gossip: true,
            track_nodes: Vec::new(),
            track_interval_s: 60.0,
            protocol_seed: 0xF00D,
            probe_timeout_s: probe_interval_s * 3.0,
        }
        .validate()
        .unwrap_or_else(|error| panic!("invalid simulation schedule: {error}"))
    }

    /// The schedule of the paper's PlanetLab deployment: four hours, one
    /// probe per node every five seconds, second half measured.
    pub fn paper_deployment() -> Self {
        Self::new(4.0 * 3600.0, 5.0)
    }

    /// Checks every invariant of the schedule and returns the config
    /// unchanged when it is runnable.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found: non-positive duration,
    /// interval, track interval or timeout; an interval longer than the
    /// run; or a measurement start outside `[0, duration)`.
    pub fn validate(self) -> Result<Self, ConfigError> {
        if !(self.duration_s.is_finite() && self.duration_s > 0.0) {
            return Err(ConfigError::NonPositiveDuration(self.duration_s));
        }
        if !(self.probe_interval_s.is_finite() && self.probe_interval_s > 0.0) {
            return Err(ConfigError::NonPositiveProbeInterval(self.probe_interval_s));
        }
        if self.probe_interval_s > self.duration_s {
            return Err(ConfigError::ProbeIntervalExceedsDuration {
                interval_s: self.probe_interval_s,
                duration_s: self.duration_s,
            });
        }
        if !(self.measurement_start_s.is_finite()
            && self.measurement_start_s >= 0.0
            && self.measurement_start_s < self.duration_s)
        {
            return Err(ConfigError::MeasurementStartOutOfRange {
                start_s: self.measurement_start_s,
                duration_s: self.duration_s,
            });
        }
        if !(self.track_interval_s.is_finite() && self.track_interval_s > 0.0) {
            return Err(ConfigError::NonPositiveTrackInterval(self.track_interval_s));
        }
        if !(self.probe_timeout_s.is_finite() && self.probe_timeout_s > 0.0) {
            return Err(ConfigError::NonPositiveProbeTimeout(self.probe_timeout_s));
        }
        Ok(self)
    }

    /// Sets the measurement start time.
    pub fn with_measurement_start(mut self, start_s: f64) -> Self {
        self.measurement_start_s = start_s;
        self
    }

    /// Sets the initial neighbour count.
    pub fn with_initial_neighbors(mut self, count: usize) -> Self {
        self.initial_neighbors = count.max(1);
        self
    }

    /// Enables or disables gossip.
    pub fn with_gossip(mut self, gossip: bool) -> Self {
        self.gossip = gossip;
        self
    }

    /// Requests coordinate tracking for the given nodes.
    pub fn with_tracked_nodes(mut self, nodes: Vec<usize>, interval_s: f64) -> Self {
        self.track_nodes = nodes;
        self.track_interval_s = interval_s;
        self
    }

    /// Sets the protocol randomness seed.
    pub fn with_protocol_seed(mut self, seed: u64) -> Self {
        self.protocol_seed = seed;
        self
    }

    /// Sets the probe timeout.
    pub fn with_probe_timeout(mut self, timeout_s: f64) -> Self {
        self.probe_timeout_s = timeout_s;
        self
    }

    /// Length of the measurement window.
    pub fn measurement_duration_s(&self) -> f64 {
        self.duration_s - self.measurement_start_s
    }
}

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

/// A heap entry; the `Ord` impl is inverted so [`BinaryHeap`] (a max-heap)
/// pops the *earliest* time first, FIFO among equal times.
#[derive(Debug)]
struct QueueEntry<T> {
    time_s: f64,
    insertion: u64,
    item: T,
}

impl<T> PartialEq for QueueEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time_s == other.time_s && self.insertion == other.insertion
    }
}

impl<T> Eq for QueueEntry<T> {}

impl<T> PartialOrd for QueueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for QueueEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time_s
            .total_cmp(&self.time_s)
            .then_with(|| other.insertion.cmp(&self.insertion))
    }
}

/// A deterministic discrete-event queue: events pop in nondecreasing time
/// order, and events scheduled for the same instant pop in insertion order
/// (FIFO), so a simulation's behaviour is a pure function of its inputs.
#[derive(Debug, Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<QueueEntry<T>>,
    insertions: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            insertions: 0,
        }
    }

    /// Schedules `item` at `time_s`.
    ///
    /// # Panics
    ///
    /// Panics when `time_s` is not finite (an event at NaN-o'clock would
    /// never pop in a defined order).
    pub fn schedule(&mut self, time_s: f64, item: T) {
        assert!(time_s.is_finite(), "event times must be finite");
        let insertion = self.insertions;
        self.insertions += 1;
        self.heap.push(QueueEntry {
            time_s,
            insertion,
            item,
        });
    }

    /// Removes and returns the earliest event as `(time, item)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|entry| (entry.time_s, entry.item))
    }

    /// The time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|entry| entry.time_s)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

/// What the simulator does when the clock reaches an event. Exchanges carry
/// per-configuration wire messages so every named configuration digests the
/// identical observation at the identical instant.
enum SimEvent {
    /// A node's probe tick: pick the next round-robin target and launch the
    /// exchange. Reschedules itself every probe interval while the node is
    /// up.
    ProbeSend { src: usize },
    /// A probe reaches its target, which answers it (the reply may then be
    /// lost on the way back).
    ProbeDeliver {
        src: usize,
        dst: usize,
        rtt_ms: f64,
        reverse_delay_s: f64,
        reverse_lost: bool,
        requests: Vec<ProbeRequest<usize>>,
    },
    /// A reply reaches the prober, which digests the observation.
    ResponseDeliver {
        src: usize,
        dst: usize,
        responses: Vec<ProbeResponse<usize>>,
    },
    /// The prober's timer for one probe fires; a no-op when the reply
    /// arrived first.
    ProbeTimeout { src: usize, seq: u64 },
    /// Sample the tracked nodes' coordinates (Figure 7 trajectories).
    TrackSample,
    /// Apply the next scripted scenario action.
    ScenarioAction { index: usize },
}

/// One in-run network partition: packets crossing the boundary between
/// `members` and everyone else are dropped until `heal_at_s`.
struct PartitionWindow {
    heal_at_s: f64,
    members: Vec<bool>,
}

/// One coordinate stack (a full set of [`StableNode`]s, one per host) run by
/// the simulator.
struct ConfigRun {
    name: String,
    config: NodeConfig,
    nodes: Vec<StableNode<usize>>,
    metrics: ConfigMetrics,
}

/// Runs one or more coordinate-stack configurations over a synthetic
/// workload, optionally under a churn [`Scenario`]. See the
/// [crate-level documentation](crate) for an example.
pub struct Simulator {
    workload: PlanetLabConfig,
    sim_config: SimConfig,
    topology: Topology,
    /// Row-major ground-truth RTT matrix: the hot-path lookup behind every
    /// link-model construction.
    rtt_matrix: RttMatrix,
    links: HashMap<(usize, usize), LinkModel>,
    neighbor_sets: Vec<Vec<usize>>,
    round_robin: Vec<usize>,
    runs: Vec<ConfigRun>,
    protocol_rng: StdRng,
    scenario: Scenario,
    /// Liveness per node; down nodes neither probe nor answer.
    alive: Vec<bool>,
    /// Whether a future `ProbeSend` for the node is already in the queue
    /// (guards against double-scheduling across crash/restart cycles).
    probe_cycle_active: Vec<bool>,
    /// Per-run, per-node snapshot taken at the instant of a crash, consumed
    /// by a later restart.
    crash_snapshots: Vec<Vec<Option<NodeSnapshot<usize>>>>,
    active_partitions: Vec<PartitionWindow>,
}

impl Simulator {
    /// Builds a simulator over `workload` with the given schedule, running
    /// every named configuration side by side.
    ///
    /// # Panics
    ///
    /// Panics when `configs` is empty, when two configurations share a name,
    /// when a tracked node index is out of range, or when the schedule fails
    /// [`SimConfig::validate`].
    pub fn new(
        workload: PlanetLabConfig,
        sim_config: SimConfig,
        configs: Vec<(String, NodeConfig)>,
    ) -> Self {
        let sim_config = sim_config
            .validate()
            .unwrap_or_else(|error| panic!("invalid simulation schedule: {error}"));
        assert!(
            !configs.is_empty(),
            "at least one configuration is required"
        );
        {
            let mut names: Vec<&str> = configs.iter().map(|(n, _)| n.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(
                names.len(),
                configs.len(),
                "configuration names must be unique"
            );
        }
        let topology = workload.build_topology();
        let rtt_matrix = topology.base_rtt_matrix();
        let n = topology.len();
        for &tracked in &sim_config.track_nodes {
            assert!(tracked < n, "tracked node {tracked} out of range");
        }
        let mut protocol_rng = StdRng::seed_from_u64(sim_config.protocol_seed);

        // Initial neighbour sets: a ring of successors plus a few random
        // members, mimicking "a node knows at least one other node when it
        // enters the system" seeded from a membership file.
        let mut neighbor_sets: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut set = Vec::new();
            let want = sim_config.initial_neighbors.min(n - 1);
            let mut k = 1;
            while set.len() < want {
                let candidate = if set.len() < want / 2 || n <= 3 {
                    (i + k) % n
                } else {
                    protocol_rng.gen_range(0..n)
                };
                k += 1;
                if candidate != i && !set.contains(&candidate) {
                    set.push(candidate);
                }
            }
            neighbor_sets.push(set);
        }

        let measurement_duration = sim_config.measurement_duration_s();
        let run_count = configs.len();
        let runs = configs
            .into_iter()
            .map(|(name, config)| ConfigRun {
                name,
                nodes: (0..n).map(|_| StableNode::new(config.clone())).collect(),
                metrics: ConfigMetrics::new(n, measurement_duration),
                config,
            })
            .collect();

        Simulator {
            workload,
            sim_config,
            topology,
            rtt_matrix,
            links: HashMap::new(),
            neighbor_sets,
            round_robin: vec![0; n],
            runs,
            protocol_rng,
            scenario: Scenario::new(),
            alive: vec![true; n],
            probe_cycle_active: vec![false; n],
            crash_snapshots: vec![vec![None; n]; run_count],
            active_partitions: Vec::new(),
        }
    }

    /// Attaches a churn scenario to the run. Applied identically to every
    /// named configuration.
    ///
    /// # Panics
    ///
    /// Panics when the scenario references a node index outside the
    /// workload.
    pub fn with_scenario(mut self, scenario: Scenario) -> Self {
        if let Some(max) = scenario.max_node() {
            assert!(
                max < self.topology.len(),
                "scenario references node {max}, workload has {} nodes",
                self.topology.len()
            );
        }
        self.scenario = scenario;
        self
    }

    /// The generated topology (ground-truth base RTTs).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Draws one full exchange over the (unordered) link `src`–`dst`: the
    /// observed RTT, the per-direction loss decisions and the asymmetric
    /// one-way delays. The base RTT comes from the flattened
    /// [`RttMatrix`] — one multiply-add per lookup on the hot path.
    fn sample_exchange(&mut self, src: usize, dst: usize, time_s: f64) -> LinkDraw {
        let key = if src < dst { (src, dst) } else { (dst, src) };
        let base = self.rtt_matrix[(key.0, key.1)];
        let seed = self
            .workload
            .seed()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((key.0 as u64) << 32) | key.1 as u64);
        let duration = self.sim_config.duration_s;
        let link_config = self.workload.link_config().clone();
        let link = self
            .links
            .entry(key)
            .or_insert_with(|| LinkModel::new(base, link_config, duration, seed));
        let rtt_ms = link.sample(time_s);
        let forward_lost = link.sample_loss();
        let reverse_lost = link.sample_loss();
        let (lo_to_hi_ms, hi_to_lo_ms) = link.one_way_split(rtt_ms);
        // The split is stored in (low, high) index order; orient it to the
        // actual probe direction.
        let (forward_ms, reverse_ms) = if src == key.0 {
            (lo_to_hi_ms, hi_to_lo_ms)
        } else {
            (hi_to_lo_ms, lo_to_hi_ms)
        };
        LinkDraw {
            rtt_ms,
            forward_delay_s: forward_ms / 1_000.0,
            reverse_delay_s: reverse_ms / 1_000.0,
            forward_lost,
            reverse_lost,
        }
    }

    /// True when an active partition separates `a` from `b` at `time_s`.
    fn partitioned(&self, a: usize, b: usize, time_s: f64) -> bool {
        self.active_partitions
            .iter()
            .any(|window| time_s < window.heal_at_s && window.members[a] != window.members[b])
    }

    /// Folds one engine event stream into a node's metric accumulators.
    /// Losses are counted over the whole run (a dead link produces nothing
    /// to gate a measurement window on); everything else respects the
    /// warm-up exclusion.
    fn fold_events(
        metrics: &mut NodeMetrics,
        time_s: f64,
        measuring: bool,
        events: &[Event<usize>],
    ) {
        for event in events {
            match event {
                Event::SystemMoved {
                    displacement_ms,
                    relative_error,
                    application_relative_error,
                    ..
                } if measuring => {
                    metrics.system_errors.push((time_s, *relative_error));
                    metrics
                        .application_errors
                        .push((time_s, *application_relative_error));
                    if *displacement_ms > 0.0 {
                        metrics
                            .system_displacements
                            .push((time_s, *displacement_ms));
                    }
                }
                Event::ApplicationUpdated { update } if measuring => {
                    metrics
                        .application_displacements
                        .push((time_s, update.displacement_ms));
                }
                Event::ProbeLost { .. } => {
                    metrics.probes_lost += 1;
                }
                _ => {}
            }
        }
    }

    /// Runs the simulation to completion and returns the collected metrics.
    pub fn run(&mut self) -> SimReport {
        let duration = self.sim_config.duration_s;
        let mut queue: EventQueue<SimEvent> = EventQueue::new();

        for node in self.scenario.initially_down().to_vec() {
            self.alive[node] = false;
        }
        for (index, event) in self.scenario.events().iter().enumerate() {
            if event.at_s < duration {
                queue.schedule(event.at_s, SimEvent::ScenarioAction { index });
            }
        }
        for src in 0..self.topology.len() {
            if self.alive[src] {
                self.probe_cycle_active[src] = true;
                queue.schedule(0.0, SimEvent::ProbeSend { src });
            }
        }
        if !self.sim_config.track_nodes.is_empty() {
            queue.schedule(0.0, SimEvent::TrackSample);
        }

        while let Some((now, event)) = queue.pop() {
            if now >= duration {
                break;
            }
            match event {
                SimEvent::ProbeSend { src } => self.on_probe_send(now, src, &mut queue),
                SimEvent::ProbeDeliver {
                    src,
                    dst,
                    rtt_ms,
                    reverse_delay_s,
                    reverse_lost,
                    requests,
                } => self.on_probe_deliver(
                    now,
                    src,
                    dst,
                    rtt_ms,
                    reverse_delay_s,
                    reverse_lost,
                    requests,
                    &mut queue,
                ),
                SimEvent::ResponseDeliver {
                    src,
                    dst,
                    responses,
                } => self.on_response_deliver(now, src, dst, &responses),
                SimEvent::ProbeTimeout { src, seq } => self.on_probe_timeout(src, seq),
                SimEvent::TrackSample => self.on_track_sample(now, &mut queue),
                SimEvent::ScenarioAction { index } => self.on_scenario(now, index, &mut queue),
            }
        }

        let mut configs = HashMap::new();
        for run in &self.runs {
            configs.insert(run.name.clone(), run.metrics.clone());
        }
        SimReport::new(
            configs,
            self.sim_config.duration_s,
            self.sim_config.measurement_start_s,
        )
    }

    fn on_probe_send(&mut self, now: f64, src: usize, queue: &mut EventQueue<SimEvent>) {
        // Healed partitions are dead weight for every later crossing check;
        // prune them as the clock passes their heal time.
        self.active_partitions
            .retain(|window| window.heal_at_s > now);
        if !self.alive[src] {
            // The cycle dies with the node; a restart schedules a new one.
            self.probe_cycle_active[src] = false;
            return;
        }
        let next_tick = now + self.sim_config.probe_interval_s;
        if next_tick < self.sim_config.duration_s {
            queue.schedule(next_tick, SimEvent::ProbeSend { src });
        } else {
            self.probe_cycle_active[src] = false;
        }

        let neighbor_count = self.neighbor_sets[src].len();
        if neighbor_count == 0 {
            return;
        }
        let dst = self.neighbor_sets[src][self.round_robin[src] % neighbor_count];
        self.round_robin[src] = self.round_robin[src].wrapping_add(1);
        if dst == src {
            return;
        }

        // One raw observation shared by every configuration.
        let draw = self.sample_exchange(src, dst, now);
        let now_ms = (now * 1_000.0) as u64;
        let requests: Vec<ProbeRequest<usize>> = self
            .runs
            .iter_mut()
            .map(|run| run.nodes[src].probe_request_for(dst, now_ms))
            .collect();

        // The timer is armed regardless of the probe's fate — exactly what a
        // deployed prober would do.
        queue.schedule(
            now + self.sim_config.probe_timeout_s,
            SimEvent::ProbeTimeout {
                src,
                seq: requests[0].seq,
            },
        );

        if draw.forward_lost || self.partitioned(src, dst, now) {
            return;
        }
        queue.schedule(
            now + draw.forward_delay_s,
            SimEvent::ProbeDeliver {
                src,
                dst,
                rtt_ms: draw.rtt_ms,
                reverse_delay_s: draw.reverse_delay_s,
                reverse_lost: draw.reverse_lost,
                requests,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn on_probe_deliver(
        &mut self,
        now: f64,
        src: usize,
        dst: usize,
        rtt_ms: f64,
        reverse_delay_s: f64,
        reverse_lost: bool,
        requests: Vec<ProbeRequest<usize>>,
        queue: &mut EventQueue<SimEvent>,
    ) {
        // A crash between send and delivery silently eats the probe; the
        // prober's timeout reports the loss.
        if !self.alive[dst] || self.partitioned(src, dst, now) {
            return;
        }
        let responses: Vec<ProbeResponse<usize>> = self
            .runs
            .iter_mut()
            .zip(&requests)
            .map(|(run, request)| {
                let mut response = run.nodes[dst].respond(request);
                response.rtt_ms = rtt_ms;
                response
            })
            .collect();
        if reverse_lost {
            return;
        }
        queue.schedule(
            now + reverse_delay_s,
            SimEvent::ResponseDeliver {
                src,
                dst,
                responses,
            },
        );
    }

    fn on_response_deliver(
        &mut self,
        now: f64,
        src: usize,
        dst: usize,
        responses: &[ProbeResponse<usize>],
    ) {
        // A reply reaching a node that crashed meanwhile is dropped; the
        // pending entry survives in its crash snapshot and is expired as
        // lost if the node restarts. A reply crossing a partition that
        // activated while it was in flight is dropped too — every packet
        // across the boundary, in both directions, is lost until the heal.
        if !self.alive[src] || self.partitioned(src, dst, now) {
            return;
        }
        let measuring = now >= self.sim_config.measurement_start_s;
        for (run, response) in self.runs.iter_mut().zip(responses) {
            let events = run.nodes[src].handle_response(response);
            let node_metrics = &mut run.metrics.nodes[src];
            if measuring {
                node_metrics.observations += 1;
            }
            Self::fold_events(node_metrics, now, measuring, &events);
        }

        // Gossip: the probed node hands back one address from its own
        // neighbour set; the prober adds it. Identical across
        // configurations because it only affects the probe schedule.
        if self.sim_config.gossip && !self.neighbor_sets[dst].is_empty() {
            let idx = self
                .protocol_rng
                .gen_range(0..self.neighbor_sets[dst].len());
            let learned = self.neighbor_sets[dst][idx];
            if learned != src && !self.neighbor_sets[src].contains(&learned) {
                self.neighbor_sets[src].push(learned);
            }
        }
    }

    fn on_probe_timeout(&mut self, src: usize, seq: u64) {
        if !self.alive[src] {
            return;
        }
        // When a configuration's engine evicts the unresponsive peer
        // (`NodeConfig::max_consecutive_losses`), the shared probe rotation
        // honours it — but only once *every* configuration has evicted, so
        // the schedule stays identical across side-by-side stacks. With
        // matching eviction thresholds (the usual case) they all fire on
        // the same timeout.
        let mut target = None;
        let mut evicted_by_all = true;
        for run in &mut self.runs {
            let events = run.nodes[src].handle_timeout(seq);
            let mut evicted_here = false;
            for event in &events {
                match event {
                    Event::ProbeLost { id, .. } => target = Some(*id),
                    Event::NeighborEvicted { .. } => evicted_here = true,
                    _ => {}
                }
            }
            Self::fold_events(&mut run.metrics.nodes[src], 0.0, false, &events);
            evicted_by_all &= evicted_here;
        }
        if evicted_by_all {
            if let Some(dst) = target {
                self.neighbor_sets[src].retain(|&member| member != dst);
            }
        }
    }

    fn on_track_sample(&mut self, now: f64, queue: &mut EventQueue<SimEvent>) {
        for run in &mut self.runs {
            for &node in &self.sim_config.track_nodes {
                run.metrics.tracked.push(TrackedCoordinate {
                    time_s: now,
                    node,
                    system: run.nodes[node].system_coordinate().clone(),
                    application: run.nodes[node].application_coordinate().clone(),
                });
            }
        }
        let next = now + self.sim_config.track_interval_s;
        if next < self.sim_config.duration_s {
            queue.schedule(next, SimEvent::TrackSample);
        }
    }

    fn on_scenario(&mut self, now: f64, index: usize, queue: &mut EventQueue<SimEvent>) {
        let action = self.scenario.events()[index].action.clone();
        match action {
            ScenarioAction::Join { nodes } => {
                for node in nodes {
                    self.bring_up(now, node, true, queue);
                }
            }
            ScenarioAction::Leave { nodes } => {
                for node in nodes {
                    self.alive[node] = false;
                    // A graceful leaver says goodbye: every live node drops
                    // it from its probe rotation immediately.
                    for set in &mut self.neighbor_sets {
                        set.retain(|&member| member != node);
                    }
                }
            }
            ScenarioAction::Crash { nodes } => {
                for node in nodes {
                    if !self.alive[node] {
                        continue;
                    }
                    self.alive[node] = false;
                    for run_index in 0..self.runs.len() {
                        let snapshot = self.runs[run_index].nodes[node].snapshot();
                        self.crash_snapshots[run_index][node] = Some(snapshot);
                    }
                }
            }
            ScenarioAction::Restart { nodes } => {
                for node in nodes {
                    self.bring_up(now, node, false, queue);
                }
            }
            ScenarioAction::Partition { group, heal_at_s } => {
                self.start_partition(&group, heal_at_s);
            }
            ScenarioAction::PartitionRegions { regions, heal_at_s } => {
                let group: Vec<usize> = regions
                    .iter()
                    .flat_map(|&region| self.topology.nodes_in_region(region))
                    .collect();
                self.start_partition(&group, heal_at_s);
            }
        }
    }

    fn start_partition(&mut self, group: &[usize], heal_at_s: f64) {
        let mut members = vec![false; self.topology.len()];
        for &node in group {
            members[node] = true;
        }
        self.active_partitions
            .push(PartitionWindow { heal_at_s, members });
    }

    /// Brings a down node back up: fresh engines on a join, crash-snapshot
    /// restores on a restart. Either way its probe cycle resumes
    /// immediately and any probes outstanding at the crash are expired as
    /// lost (a rebooted daemon stops waiting for pre-crash replies).
    fn bring_up(&mut self, now: f64, node: usize, fresh: bool, queue: &mut EventQueue<SimEvent>) {
        if self.alive[node] {
            return;
        }
        self.alive[node] = true;
        let now_ms = (now * 1_000.0) as u64;
        for run_index in 0..self.runs.len() {
            let snapshot = if fresh {
                None
            } else {
                self.crash_snapshots[run_index][node].take()
            };
            let run = &mut self.runs[run_index];
            let mut revived = match snapshot {
                Some(snapshot) => StableNode::restore(run.config.clone(), &snapshot)
                    .expect("a crash snapshot restores under its own configuration"),
                None => StableNode::new(run.config.clone()),
            };
            let events = revived.expire_pending(now_ms, 0);
            Self::fold_events(&mut run.metrics.nodes[node], now, false, &events);
            run.nodes[node] = revived;
        }
        if fresh {
            // A joiner bootstraps a fresh neighbour set of live peers, and
            // announces itself to them (the membership-file introduction of
            // the paper's deployments) so the mesh starts probing it back;
            // gossip spreads its address from there.
            self.round_robin[node] = 0;
            let n = self.topology.len();
            let want = self.sim_config.initial_neighbors.min(
                self.alive
                    .iter()
                    .filter(|&&up| up)
                    .count()
                    .saturating_sub(1),
            );
            let mut set = Vec::new();
            let mut attempts = 0;
            while set.len() < want && attempts < n * 16 {
                attempts += 1;
                let candidate = self.protocol_rng.gen_range(0..n);
                if candidate != node && self.alive[candidate] && !set.contains(&candidate) {
                    set.push(candidate);
                }
            }
            for &seed in &set {
                if !self.neighbor_sets[seed].contains(&node) {
                    self.neighbor_sets[seed].push(node);
                }
            }
            self.neighbor_sets[node] = set;
        }
        if !self.probe_cycle_active[node] {
            self.probe_cycle_active[node] = true;
            queue.schedule(now, SimEvent::ProbeSend { src: node });
        }
    }
}

/// One sampled exchange over a link.
struct LinkDraw {
    rtt_ms: f64,
    forward_delay_s: f64,
    reverse_delay_s: f64,
    forward_lost: bool,
    reverse_lost: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkmodel::LinkModelConfig;
    use stable_nc::NodeConfig;

    fn quick_sim(configs: Vec<(String, NodeConfig)>) -> SimReport {
        let workload = PlanetLabConfig::small(12).with_seed(3);
        let sim_config = SimConfig::new(400.0, 5.0)
            .with_measurement_start(200.0)
            .with_initial_neighbors(4);
        Simulator::new(workload, sim_config, configs).run()
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn requires_a_configuration() {
        let _ = Simulator::new(PlanetLabConfig::small(4), SimConfig::new(10.0, 1.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "names must be unique")]
    fn rejects_duplicate_names() {
        let _ = Simulator::new(
            PlanetLabConfig::small(4),
            SimConfig::new(10.0, 1.0),
            vec![
                ("a".into(), NodeConfig::paper_defaults()),
                ("a".into(), NodeConfig::original_vivaldi()),
            ],
        );
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let good = SimConfig::new(100.0, 5.0);
        assert!(good.clone().validate().is_ok());
        let mut bad = good.clone();
        bad.duration_s = 0.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NonPositiveDuration(_))
        ));
        let mut bad = good.clone();
        bad.probe_interval_s = f64::NAN;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NonPositiveProbeInterval(_))
        ));
        let mut bad = good.clone();
        bad.probe_interval_s = 500.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::ProbeIntervalExceedsDuration { .. })
        ));
        let mut bad = good.clone();
        bad.measurement_start_s = 100.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::MeasurementStartOutOfRange { .. })
        ));
        let mut bad = good.clone();
        bad.track_interval_s = -1.0;
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::NonPositiveTrackInterval(_))
        ));
        let mut bad = good.clone();
        bad.probe_timeout_s = 0.0;
        let error = bad.validate().unwrap_err();
        assert!(matches!(error, ConfigError::NonPositiveProbeTimeout(_)));
        assert!(!error.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid simulation schedule")]
    fn constructor_panics_through_validate() {
        let _ = SimConfig::new(0.0, 1.0);
    }

    #[test]
    fn event_queue_pops_in_time_then_fifo_order() {
        let mut queue: EventQueue<&str> = EventQueue::new();
        queue.schedule(5.0, "late");
        queue.schedule(1.0, "early-first");
        queue.schedule(1.0, "early-second");
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.peek_time(), Some(1.0));
        assert_eq!(queue.pop(), Some((1.0, "early-first")));
        assert_eq!(queue.pop(), Some((1.0, "early-second")));
        assert_eq!(queue.pop(), Some((5.0, "late")));
        assert!(queue.is_empty());
        assert_eq!(queue.pop(), None);
    }

    #[test]
    #[should_panic(expected = "event times must be finite")]
    fn event_queue_rejects_nan_times() {
        let mut queue: EventQueue<u8> = EventQueue::new();
        queue.schedule(f64::NAN, 0);
    }

    #[test]
    fn collects_metrics_for_every_node() {
        let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
        let metrics = report.config("mp").unwrap();
        assert_eq!(metrics.nodes.len(), 12);
        let with_samples = metrics
            .nodes
            .iter()
            .filter(|n| !n.system_errors.is_empty())
            .count();
        assert!(
            with_samples >= 10,
            "most nodes should have measured samples"
        );
        assert!(metrics.aggregate_instability() > 0.0);
    }

    #[test]
    fn embedding_error_becomes_reasonable() {
        let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
        let metrics = report.config("mp").unwrap();
        let median = metrics.median_of_median_relative_error();
        assert!(
            median < 0.6,
            "median relative error should drop well below 1.0, got {median:.2}"
        );
    }

    #[test]
    fn filtered_stack_is_more_stable_than_raw() {
        let report = quick_sim(vec![
            ("mp".into(), NodeConfig::paper_defaults()),
            ("raw".into(), NodeConfig::original_vivaldi()),
        ]);
        let mp = report.config("mp").unwrap();
        let raw = report.config("raw").unwrap();
        assert!(
            mp.aggregate_instability() < raw.aggregate_instability(),
            "MP filter should stabilise the space ({} vs {})",
            mp.aggregate_instability(),
            raw.aggregate_instability()
        );
    }

    #[test]
    fn tracking_produces_trajectories() {
        let workload = PlanetLabConfig::small(6).with_seed(5);
        let sim_config = SimConfig::new(120.0, 5.0)
            .with_measurement_start(60.0)
            .with_tracked_nodes(vec![0, 3], 20.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .run();
        let tracked = &report.config("mp").unwrap().tracked;
        assert!(!tracked.is_empty());
        assert!(tracked.iter().all(|t| t.node == 0 || t.node == 3));
    }

    #[test]
    fn gossip_grows_neighbor_sets() {
        let workload = PlanetLabConfig::small(16).with_seed(9);
        let sim_config = SimConfig::new(300.0, 5.0)
            .with_initial_neighbors(2)
            .with_measurement_start(150.0);
        let mut sim = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        );
        let before: usize = sim.neighbor_sets.iter().map(|s| s.len()).sum();
        sim.run();
        let after: usize = sim.neighbor_sets.iter().map(|s| s.len()).sum();
        assert!(
            after > before,
            "gossip should add neighbours ({before} -> {after})"
        );
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let run = || {
            let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
            report
                .config("mp")
                .unwrap()
                .median_of_median_relative_error()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sim_config_accessors() {
        let c = SimConfig::paper_deployment();
        assert_eq!(c.duration_s, 4.0 * 3600.0);
        assert_eq!(c.probe_interval_s, 5.0);
        assert_eq!(c.measurement_duration_s(), 2.0 * 3600.0);
        assert_eq!(c.probe_timeout_s, 15.0);
    }

    #[test]
    fn lossy_links_report_probe_losses_without_stalling() {
        let workload = PlanetLabConfig::small(10)
            .with_seed(4)
            .with_link_config(LinkModelConfig::default().with_loss_probability(0.05));
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(100.0)
            .with_initial_neighbors(4);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .run();
        let metrics = report.config("mp").unwrap();
        assert!(
            metrics.total_probes_lost() > 0,
            "5% loss must produce ProbeLost events"
        );
        // The schedule never stalls: observations keep flowing and the
        // embedding still converges.
        let observed: u64 = metrics.nodes.iter().map(|n| n.observations).sum();
        assert!(observed > 500, "only {observed} observations got through");
        assert!(metrics.median_of_median_relative_error() < 0.8);
    }

    #[test]
    fn total_loss_yields_only_probe_losses() {
        let workload = PlanetLabConfig::small(6)
            .with_seed(8)
            .with_link_config(LinkModelConfig::default().with_loss_probability(1.0));
        let sim_config = SimConfig::new(200.0, 5.0).with_measurement_start(10.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .run();
        let metrics = report.config("mp").unwrap();
        assert!(metrics.total_probes_lost() > 0);
        for node in &metrics.nodes {
            assert!(node.system_errors.is_empty(), "no observation can arrive");
            assert_eq!(node.observations, 0);
        }
    }

    #[test]
    fn crash_restart_restores_state_and_recovers() {
        let workload = PlanetLabConfig::small(10).with_seed(6);
        let sim_config = SimConfig::new(1_200.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        let crashed = vec![0, 1];
        let scenario = Scenario::crash_restart(crashed.clone(), 600.0, 700.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario)
        .run();
        let metrics = report.config("mp").unwrap();
        for &node in &crashed {
            let times: Vec<f64> = metrics.nodes[node]
                .system_errors
                .iter()
                .map(|(t, _)| *t)
                .collect();
            assert!(
                times.iter().any(|&t| t < 600.0),
                "node {node} observed before the crash"
            );
            assert!(
                !times.iter().any(|&t| (600.0..700.0).contains(&t)),
                "node {node} must be silent while down"
            );
            assert!(
                times.iter().any(|&t| t > 700.0),
                "node {node} resumed after the restart"
            );
        }
        // Probes of the dead nodes timed out and were reported.
        assert!(metrics.total_probes_lost() > 0);
    }

    #[test]
    fn graceful_leavers_stop_being_probed() {
        let workload = PlanetLabConfig::small(8).with_seed(2);
        let sim_config = SimConfig::new(600.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(3);
        let scenario = Scenario::new().at(300.0, ScenarioAction::Leave { nodes: vec![5] });
        let mut sim = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario);
        let report = sim.run();
        let metrics = report.config("mp").unwrap();
        assert!(
            metrics.nodes[5]
                .system_errors
                .iter()
                .all(|(t, _)| *t <= 300.5),
            "a leaver stops observing"
        );
        // Nobody keeps it in their rotation.
        for (i, set) in sim.neighbor_sets.iter().enumerate() {
            if i != 5 {
                assert!(!set.contains(&5), "node {i} still probes the leaver");
            }
        }
        // Announced departure: no timeouts needed to learn it.
        assert_eq!(metrics.total_probes_lost(), 0);
    }

    #[test]
    fn flash_crowd_joiners_participate_after_joining() {
        let workload = PlanetLabConfig::small(12).with_seed(5);
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        let crowd = vec![9, 10, 11];
        let scenario = Scenario::flash_crowd(crowd.clone(), 300.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario)
        .run();
        let metrics = report.config("mp").unwrap();
        for &node in &crowd {
            let times: Vec<f64> = metrics.nodes[node]
                .system_errors
                .iter()
                .map(|(t, _)| *t)
                .collect();
            assert!(
                times.iter().all(|&t| t >= 300.0),
                "down nodes observe nothing"
            );
            assert!(
                times.len() > 10,
                "joiner {node} embeds after joining ({} samples)",
                times.len()
            );
        }
    }

    #[test]
    fn partitions_drop_cross_group_probes_until_heal() {
        let workload = PlanetLabConfig::small(8).with_seed(12);
        let sim_config = SimConfig::new(700.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4);
        let scenario = Scenario::new().at(
            200.0,
            ScenarioAction::Partition {
                group: vec![0, 1, 2, 3],
                heal_at_s: 400.0,
            },
        );
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(scenario)
        .run();
        let metrics = report.config("mp").unwrap();
        assert!(
            metrics.total_probes_lost() > 0,
            "cross-partition probes must time out"
        );
        // After the heal, observations keep accruing for everyone.
        for node in &metrics.nodes {
            assert!(node.system_errors.iter().any(|(t, _)| *t > 450.0));
        }
    }

    #[test]
    fn scenarios_apply_identically_to_every_configuration() {
        // The schedule (who probes whom, when, what is lost) must not depend
        // on the coordinate stack: under churn, both configurations see the
        // same probe counts per node.
        let run = || {
            let workload = PlanetLabConfig::small(10)
                .with_seed(7)
                .with_link_config(LinkModelConfig::default().with_loss_probability(0.03));
            let sim_config = SimConfig::new(800.0, 5.0)
                .with_measurement_start(0.0)
                .with_initial_neighbors(4);
            Simulator::new(
                workload,
                sim_config,
                vec![
                    ("mp".into(), NodeConfig::paper_defaults()),
                    ("raw".into(), NodeConfig::original_vivaldi()),
                ],
            )
            .with_scenario(Scenario::crash_restart(vec![2, 3], 300.0, 450.0))
            .run()
        };
        let report = run();
        let mp = report.config("mp").unwrap();
        let raw = report.config("raw").unwrap();
        for (a, b) in mp.nodes.iter().zip(raw.nodes.iter()) {
            assert_eq!(a.observations, b.observations);
            assert_eq!(a.probes_lost, b.probes_lost);
        }
    }

    #[test]
    fn engine_eviction_removes_dead_peers_from_the_rotation() {
        // With eviction configured, a crashed node is dropped from every
        // survivor's shared rotation after `max_consecutive_losses` straight
        // timeouts — losses stop accruing instead of repeating forever.
        // Gossip is off so the evicted address cannot be re-learned.
        let workload = PlanetLabConfig::small(8).with_seed(3);
        let sim_config = SimConfig::new(900.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4)
            .with_gossip(false);
        let config = NodeConfig::builder().max_consecutive_losses(3).build();
        let scenario = Scenario::new().at(200.0, ScenarioAction::Crash { nodes: vec![5] });
        let mut sim = Simulator::new(workload, sim_config, vec![("mp".into(), config)])
            .with_scenario(scenario);
        let report = sim.run();
        let metrics = report.config("mp").unwrap();
        assert!(metrics.total_probes_lost() > 0, "timeouts fired");
        for (node, set) in sim.neighbor_sets.iter().enumerate() {
            if node != 5 {
                assert!(
                    !set.contains(&5),
                    "node {node} still probes the evicted peer"
                );
                assert!(
                    metrics.nodes[node].probes_lost <= 3,
                    "node {node} lost {} probes — eviction should cap the streak at 3",
                    metrics.nodes[node].probes_lost
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "scenario references node")]
    fn scenario_node_indices_are_validated() {
        let _ = Simulator::new(
            PlanetLabConfig::small(4),
            SimConfig::new(100.0, 5.0),
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .with_scenario(Scenario::crash_restart(vec![9], 10.0, 20.0));
    }
}
