//! The discrete-time coordinate-system simulator.
//!
//! The paper evaluates its enhancements in two ways that this simulator
//! unifies: a trace-driven simulator ("we built a simulator that accepted our
//! raw ping trace as input and mimicked the distributed behavior of
//! Vivaldi") and a live deployment in which the filtered and unfiltered
//! systems ran "on the same set of PlanetLab nodes at the same time, using
//! different ports". [`Simulator`] therefore runs **multiple named
//! configurations side by side on identical observation streams**: at every
//! probe the same raw RTT is handed to each configuration's node, so any
//! difference in the resulting metrics is attributable to the coordinate
//! stack alone.
//!
//! Probing follows the paper's protocol: every node samples its neighbour
//! set in round-robin order at a fixed interval, neighbour sets start small
//! and grow through gossip (each probe reply carries the address of one other
//! node the target knows about).
//!
//! The simulator is a *driver* of the sans-I/O engine: every probe runs the
//! full wire exchange — [`StableNode::probe_request_for`] →
//! [`StableNode::respond`] → stamp the sampled RTT into the
//! [`ProbeResponse`](nc_proto::ProbeResponse) →
//! [`StableNode::handle_response`] — and the metrics are folded from the
//! returned [`Event`] stream, exactly as a deployed daemon would consume
//! them.

use std::collections::HashMap;

use nc_proto::Event;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stable_nc::{NodeConfig, StableNode};

use crate::linkmodel::LinkModel;
use crate::metrics::{ConfigMetrics, SimReport, TrackedCoordinate};
use crate::planetlab::PlanetLabConfig;
use crate::topology::Topology;

/// Measurement schedule and protocol parameters of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Total simulated time in seconds.
    pub duration_s: f64,
    /// Interval between successive probes sent by one node (seconds); the
    /// paper's trace used 1 s, its deployment 5 s.
    pub probe_interval_s: f64,
    /// Metrics are only accumulated from this time onward (warm-up
    /// exclusion); the paper reports the second half of its runs.
    pub measurement_start_s: f64,
    /// How many other nodes each node knows at start-up.
    pub initial_neighbors: usize,
    /// Whether probe replies gossip one additional neighbour address.
    pub gossip: bool,
    /// Node indices whose coordinates are sampled over time (Figure 7).
    pub track_nodes: Vec<usize>,
    /// Interval between trajectory samples for tracked nodes (seconds).
    pub track_interval_s: f64,
    /// Seed for protocol-level randomness (gossip choices, initial neighbour
    /// sets). Independent of the workload seed.
    pub protocol_seed: u64,
}

impl SimConfig {
    /// Creates a schedule with the given duration and probe interval; the
    /// measurement window defaults to the second half of the run, neighbour
    /// sets start with 8 members, and gossip is enabled.
    ///
    /// # Panics
    ///
    /// Panics when duration or interval is not positive and finite, or when
    /// the interval exceeds the duration.
    pub fn new(duration_s: f64, probe_interval_s: f64) -> Self {
        assert!(duration_s.is_finite() && duration_s > 0.0);
        assert!(probe_interval_s.is_finite() && probe_interval_s > 0.0);
        assert!(probe_interval_s <= duration_s);
        SimConfig {
            duration_s,
            probe_interval_s,
            measurement_start_s: duration_s / 2.0,
            initial_neighbors: 8,
            gossip: true,
            track_nodes: Vec::new(),
            track_interval_s: 60.0,
            protocol_seed: 0xF00D,
        }
    }

    /// The schedule of the paper's PlanetLab deployment: four hours, one
    /// probe per node every five seconds, second half measured.
    pub fn paper_deployment() -> Self {
        Self::new(4.0 * 3600.0, 5.0)
    }

    /// Sets the measurement start time.
    pub fn with_measurement_start(mut self, start_s: f64) -> Self {
        assert!(start_s >= 0.0 && start_s < self.duration_s);
        self.measurement_start_s = start_s;
        self
    }

    /// Sets the initial neighbour count.
    pub fn with_initial_neighbors(mut self, count: usize) -> Self {
        self.initial_neighbors = count.max(1);
        self
    }

    /// Enables or disables gossip.
    pub fn with_gossip(mut self, gossip: bool) -> Self {
        self.gossip = gossip;
        self
    }

    /// Requests coordinate tracking for the given nodes.
    pub fn with_tracked_nodes(mut self, nodes: Vec<usize>, interval_s: f64) -> Self {
        assert!(interval_s > 0.0);
        self.track_nodes = nodes;
        self.track_interval_s = interval_s;
        self
    }

    /// Sets the protocol randomness seed.
    pub fn with_protocol_seed(mut self, seed: u64) -> Self {
        self.protocol_seed = seed;
        self
    }

    /// Length of the measurement window.
    pub fn measurement_duration_s(&self) -> f64 {
        self.duration_s - self.measurement_start_s
    }
}

/// One coordinate stack (a full set of [`StableNode`]s, one per host) run by
/// the simulator.
struct ConfigRun {
    name: String,
    nodes: Vec<StableNode<usize>>,
    metrics: ConfigMetrics,
}

/// Runs one or more coordinate-stack configurations over a synthetic
/// workload. See the [crate-level documentation](crate) for an example.
pub struct Simulator {
    workload: PlanetLabConfig,
    sim_config: SimConfig,
    topology: Topology,
    links: HashMap<(usize, usize), LinkModel>,
    neighbor_sets: Vec<Vec<usize>>,
    round_robin: Vec<usize>,
    runs: Vec<ConfigRun>,
    protocol_rng: StdRng,
}

impl Simulator {
    /// Builds a simulator over `workload` with the given schedule, running
    /// every named configuration side by side.
    ///
    /// # Panics
    ///
    /// Panics when `configs` is empty, when two configurations share a name,
    /// or when a tracked node index is out of range.
    pub fn new(
        workload: PlanetLabConfig,
        sim_config: SimConfig,
        configs: Vec<(String, NodeConfig)>,
    ) -> Self {
        assert!(
            !configs.is_empty(),
            "at least one configuration is required"
        );
        {
            let mut names: Vec<&str> = configs.iter().map(|(n, _)| n.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(
                names.len(),
                configs.len(),
                "configuration names must be unique"
            );
        }
        let topology = workload.build_topology();
        let n = topology.len();
        for &tracked in &sim_config.track_nodes {
            assert!(tracked < n, "tracked node {tracked} out of range");
        }
        let mut protocol_rng = StdRng::seed_from_u64(sim_config.protocol_seed);

        // Initial neighbour sets: a ring of successors plus a few random
        // members, mimicking "a node knows at least one other node when it
        // enters the system" seeded from a membership file.
        let mut neighbor_sets: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut set = Vec::new();
            let want = sim_config.initial_neighbors.min(n - 1);
            let mut k = 1;
            while set.len() < want {
                let candidate = if set.len() < want / 2 || n <= 3 {
                    (i + k) % n
                } else {
                    protocol_rng.gen_range(0..n)
                };
                k += 1;
                if candidate != i && !set.contains(&candidate) {
                    set.push(candidate);
                }
            }
            neighbor_sets.push(set);
        }

        let measurement_duration = sim_config.measurement_duration_s();
        let runs = configs
            .into_iter()
            .map(|(name, config)| ConfigRun {
                name,
                nodes: (0..n).map(|_| StableNode::new(config.clone())).collect(),
                metrics: ConfigMetrics::new(n, measurement_duration),
            })
            .collect();

        Simulator {
            workload,
            sim_config,
            topology,
            links: HashMap::new(),
            neighbor_sets,
            round_robin: vec![0; n],
            runs,
            protocol_rng,
        }
    }

    /// The generated topology (ground-truth base RTTs).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    fn sample_link(&mut self, a: usize, b: usize, time_s: f64) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        let base = self.topology.base_rtt_ms(key.0, key.1);
        let seed = self
            .workload
            .seed()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((key.0 as u64) << 32) | key.1 as u64);
        let duration = self.sim_config.duration_s;
        let link_config = self.workload.link_config().clone();
        self.links
            .entry(key)
            .or_insert_with(|| LinkModel::new(base, link_config, duration, seed))
            .sample(time_s)
    }

    /// Runs the simulation to completion and returns the collected metrics.
    pub fn run(&mut self) -> SimReport {
        let n = self.topology.len();
        let steps =
            (self.sim_config.duration_s / self.sim_config.probe_interval_s).floor() as usize;
        let measurement_start = self.sim_config.measurement_start_s;
        let track_every = (self.sim_config.track_interval_s / self.sim_config.probe_interval_s)
            .round()
            .max(1.0) as usize;

        for step in 0..steps {
            let time_s = step as f64 * self.sim_config.probe_interval_s;
            let measuring = time_s >= measurement_start;

            for src in 0..n {
                let neighbor_count = self.neighbor_sets[src].len();
                if neighbor_count == 0 {
                    continue;
                }
                let dst = self.neighbor_sets[src][self.round_robin[src] % neighbor_count];
                self.round_robin[src] = self.round_robin[src].wrapping_add(1);
                if dst == src {
                    continue;
                }

                // One raw observation shared by every configuration.
                let rtt_ms = self.sample_link(src, dst, time_s);
                let now_ms = (time_s * 1_000.0) as u64;

                for run in &mut self.runs {
                    // The full sans-I/O wire exchange: src builds a probe,
                    // dst answers it, the "network" (this simulator) stamps
                    // the measured round trip in, src digests the events.
                    let request = run.nodes[src].probe_request_for(dst, now_ms);
                    let mut response = run.nodes[dst].respond(&request);
                    response.rtt_ms = rtt_ms;
                    let events = run.nodes[src].handle_response(&response);
                    if measuring {
                        let node_metrics = &mut run.metrics.nodes[src];
                        node_metrics.observations += 1;
                        for event in &events {
                            match event {
                                Event::SystemMoved {
                                    displacement_ms,
                                    relative_error,
                                    application_relative_error,
                                    ..
                                } => {
                                    node_metrics.system_errors.push((time_s, *relative_error));
                                    node_metrics
                                        .application_errors
                                        .push((time_s, *application_relative_error));
                                    if *displacement_ms > 0.0 {
                                        node_metrics
                                            .system_displacements
                                            .push((time_s, *displacement_ms));
                                    }
                                }
                                Event::ApplicationUpdated { update } => {
                                    node_metrics
                                        .application_displacements
                                        .push((time_s, update.displacement_ms));
                                }
                                Event::NeighborDiscovered { .. }
                                | Event::ObservationFiltered { .. }
                                | Event::ObservationRejected { .. } => {}
                            }
                        }
                    }
                }

                // Gossip: the probed node hands back one address from its own
                // neighbour set; the prober adds it. Identical across
                // configurations because it only affects the probe schedule.
                if self.sim_config.gossip && !self.neighbor_sets[dst].is_empty() {
                    let idx = self
                        .protocol_rng
                        .gen_range(0..self.neighbor_sets[dst].len());
                    let learned = self.neighbor_sets[dst][idx];
                    if learned != src && !self.neighbor_sets[src].contains(&learned) {
                        self.neighbor_sets[src].push(learned);
                    }
                }
            }

            // Trajectory tracking.
            if !self.sim_config.track_nodes.is_empty() && step % track_every == 0 {
                for run in &mut self.runs {
                    for &node in &self.sim_config.track_nodes {
                        run.metrics.tracked.push(TrackedCoordinate {
                            time_s,
                            node,
                            system: run.nodes[node].system_coordinate().clone(),
                            application: run.nodes[node].application_coordinate().clone(),
                        });
                    }
                }
            }
        }

        let mut configs = HashMap::new();
        for run in &self.runs {
            configs.insert(run.name.clone(), run.metrics.clone());
        }
        SimReport::new(
            configs,
            self.sim_config.duration_s,
            self.sim_config.measurement_start_s,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stable_nc::NodeConfig;

    fn quick_sim(configs: Vec<(String, NodeConfig)>) -> SimReport {
        let workload = PlanetLabConfig::small(12).with_seed(3);
        let sim_config = SimConfig::new(400.0, 5.0)
            .with_measurement_start(200.0)
            .with_initial_neighbors(4);
        Simulator::new(workload, sim_config, configs).run()
    }

    #[test]
    #[should_panic(expected = "at least one configuration")]
    fn requires_a_configuration() {
        let _ = Simulator::new(PlanetLabConfig::small(4), SimConfig::new(10.0, 1.0), vec![]);
    }

    #[test]
    #[should_panic(expected = "names must be unique")]
    fn rejects_duplicate_names() {
        let _ = Simulator::new(
            PlanetLabConfig::small(4),
            SimConfig::new(10.0, 1.0),
            vec![
                ("a".into(), NodeConfig::paper_defaults()),
                ("a".into(), NodeConfig::original_vivaldi()),
            ],
        );
    }

    #[test]
    fn collects_metrics_for_every_node() {
        let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
        let metrics = report.config("mp").unwrap();
        assert_eq!(metrics.nodes.len(), 12);
        let with_samples = metrics
            .nodes
            .iter()
            .filter(|n| !n.system_errors.is_empty())
            .count();
        assert!(
            with_samples >= 10,
            "most nodes should have measured samples"
        );
        assert!(metrics.aggregate_instability() > 0.0);
    }

    #[test]
    fn embedding_error_becomes_reasonable() {
        let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
        let metrics = report.config("mp").unwrap();
        let median = metrics.median_of_median_relative_error();
        assert!(
            median < 0.6,
            "median relative error should drop well below 1.0, got {median:.2}"
        );
    }

    #[test]
    fn filtered_stack_is_more_stable_than_raw() {
        let report = quick_sim(vec![
            ("mp".into(), NodeConfig::paper_defaults()),
            ("raw".into(), NodeConfig::original_vivaldi()),
        ]);
        let mp = report.config("mp").unwrap();
        let raw = report.config("raw").unwrap();
        assert!(
            mp.aggregate_instability() < raw.aggregate_instability(),
            "MP filter should stabilise the space ({} vs {})",
            mp.aggregate_instability(),
            raw.aggregate_instability()
        );
    }

    #[test]
    fn tracking_produces_trajectories() {
        let workload = PlanetLabConfig::small(6).with_seed(5);
        let sim_config = SimConfig::new(120.0, 5.0)
            .with_measurement_start(60.0)
            .with_tracked_nodes(vec![0, 3], 20.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        )
        .run();
        let tracked = &report.config("mp").unwrap().tracked;
        assert!(!tracked.is_empty());
        assert!(tracked.iter().all(|t| t.node == 0 || t.node == 3));
    }

    #[test]
    fn gossip_grows_neighbor_sets() {
        let workload = PlanetLabConfig::small(16).with_seed(9);
        let sim_config = SimConfig::new(300.0, 5.0)
            .with_initial_neighbors(2)
            .with_measurement_start(150.0);
        let mut sim = Simulator::new(
            workload,
            sim_config,
            vec![("mp".into(), NodeConfig::paper_defaults())],
        );
        let before: usize = sim.neighbor_sets.iter().map(|s| s.len()).sum();
        sim.run();
        let after: usize = sim.neighbor_sets.iter().map(|s| s.len()).sum();
        assert!(
            after > before,
            "gossip should add neighbours ({before} -> {after})"
        );
    }

    #[test]
    fn identical_seeds_give_identical_reports() {
        let run = || {
            let report = quick_sim(vec![("mp".into(), NodeConfig::paper_defaults())]);
            report
                .config("mp")
                .unwrap()
                .median_of_median_relative_error()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sim_config_accessors() {
        let c = SimConfig::paper_deployment();
        assert_eq!(c.duration_s, 4.0 * 3600.0);
        assert_eq!(c.probe_interval_s, 5.0);
        assert_eq!(c.measurement_duration_s(), 2.0 * 3600.0);
    }
}
