//! Per-link latency observation model.
//!
//! Section III of the paper characterises what real measurements of one link
//! look like: a tight common case near the propagation delay, plus rare but
//! persistent samples one to three orders of magnitude larger, spread over
//! the whole trace (Figure 3), amounting to ≈ 0.4 % of all samples exceeding
//! one second across the full mesh (Figure 2). The [`LinkModel`] reproduces
//! that shape:
//!
//! * **base RTT** from the [`crate::topology::Topology`];
//! * **lognormal jitter** around the base (queueing, OS scheduling);
//! * a **heavy-tailed outlier process**: with small probability a sample is
//!   replaced by a Pareto-distributed spike (application-level pings on a
//!   busy PlanetLab node routinely measured hundreds of milliseconds to tens
//!   of seconds);
//! * **slow drift** (diurnal load) and optional **route-change level
//!   shifts**, so the underlying network genuinely changes over time the way
//!   Figure 7 shows.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::rand_ext;
use crate::sim::ConfigError;

/// Tuning of the observation model, shared by every link of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkModelConfig {
    /// Standard deviation of the lognormal jitter, expressed as a fraction of
    /// the base RTT (default 0.03: a 100 ms link jitters by a few ms).
    pub jitter_sigma: f64,
    /// Probability that a sample is an outlier drawn from the heavy tail
    /// (default 0.012).
    pub outlier_probability: f64,
    /// Pareto shape of outlier magnitudes; smaller is heavier (default 0.9,
    /// giving a tail that regularly reaches seconds and occasionally tens of
    /// seconds).
    pub outlier_alpha: f64,
    /// Scale of the outlier Pareto, as a multiple of the base RTT
    /// (default 3.0: outliers start at a few times the base RTT).
    pub outlier_scale_factor: f64,
    /// Amplitude of the slow sinusoidal drift as a fraction of the base RTT
    /// (default 0.05), with a period of several hours.
    pub drift_amplitude: f64,
    /// Expected number of route-change level shifts per link per day
    /// (default 0.5). Each shift multiplies the base RTT by a factor drawn
    /// from 0.7–1.6 for the remainder of the run.
    pub route_changes_per_day: f64,
    /// Floor applied to every sample in milliseconds (default 0.3 — even a
    /// same-rack ping costs something).
    pub min_rtt_ms: f64,
    /// Probability that a probe (or its reply) is dropped outright on this
    /// link, per direction (default 0.0 — the paper's application-level
    /// pings retried until they heard back, so the original model had no
    /// loss). The discrete-event simulator draws one loss decision per
    /// direction of every exchange.
    pub loss_probability: f64,
    /// Maximum asymmetry of the forward/reverse one-way delays, as a
    /// fraction of half the RTT (default 0.0: both directions take exactly
    /// half). Each link draws a fixed factor in `[-a, a]` at construction,
    /// modelling asymmetric routes whose forward path is consistently
    /// longer than the reverse.
    pub delay_asymmetry: f64,
    /// Per-step standard deviation of the multiplicative random-walk drift
    /// in log space (default 0.0: no walk). Every `drift_walk_step_s`
    /// seconds the underlying base RTT level is multiplied by
    /// `exp(N(0, sigma))`, and the level is linearly interpolated between
    /// steps — the slow, persistent base-RTT migration over simulated hours
    /// that the paper's stability filters exist to track, as opposed to the
    /// bounded sinusoidal `drift_amplitude`. Levels are clamped to
    /// `[0.25, 4.0]` so an unlucky walk stays physical. Like
    /// `loss_probability`, the walk consumes randomness only when enabled,
    /// so sigma-0 configs keep their exact observation streams.
    pub drift_walk_sigma: f64,
    /// Step length of the random-walk drift in seconds (default 1800.0:
    /// the base level takes a new step every simulated half hour).
    pub drift_walk_step_s: f64,
}

impl Default for LinkModelConfig {
    fn default() -> Self {
        LinkModelConfig {
            jitter_sigma: 0.03,
            outlier_probability: 0.012,
            outlier_alpha: 0.9,
            outlier_scale_factor: 3.0,
            drift_amplitude: 0.05,
            route_changes_per_day: 0.5,
            min_rtt_ms: 0.3,
            loss_probability: 0.0,
            delay_asymmetry: 0.0,
            drift_walk_sigma: 0.0,
            drift_walk_step_s: 1800.0,
        }
    }
}

impl LinkModelConfig {
    /// A calmer configuration without outliers or route changes — useful for
    /// convergence tests where the heavy tail would only add noise.
    pub fn clean() -> Self {
        LinkModelConfig {
            jitter_sigma: 0.01,
            outlier_probability: 0.0,
            outlier_alpha: 1.5,
            outlier_scale_factor: 2.0,
            drift_amplitude: 0.0,
            route_changes_per_day: 0.0,
            min_rtt_ms: 0.3,
            loss_probability: 0.0,
            delay_asymmetry: 0.0,
            drift_walk_sigma: 0.0,
            drift_walk_step_s: 1800.0,
        }
    }

    /// Sets the per-direction loss probability.
    ///
    /// The setter records the value as given; an out-of-range probability is
    /// reported as [`ConfigError::LossProbabilityOutOfRange`] by
    /// [`LinkModelConfig::validate`], which [`crate::Simulator::new`] runs
    /// before any link is built. (Until the workspace-wide builder
    /// unification this setter panicked on bad input; validation now lives
    /// in one place for every config surface.)
    pub fn with_loss_probability(mut self, p: f64) -> Self {
        self.loss_probability = p;
        self
    }

    /// Sets the maximum one-way delay asymmetry fraction.
    ///
    /// The setter records the value as given; anything outside `[0, 1)` is
    /// reported as [`ConfigError::DelayAsymmetryOutOfRange`] by
    /// [`LinkModelConfig::validate`].
    pub fn with_delay_asymmetry(mut self, a: f64) -> Self {
        self.delay_asymmetry = a;
        self
    }

    /// Enables the random-walk base-RTT drift: per-step log-space standard
    /// deviation `sigma`, one step every `step_s` seconds.
    ///
    /// The setter records the values as given; a non-positive step or
    /// non-finite sigma is reported as a typed [`ConfigError`] by
    /// [`LinkModelConfig::validate`].
    pub fn with_drift_walk(mut self, sigma: f64, step_s: f64) -> Self {
        self.drift_walk_sigma = sigma;
        self.drift_walk_step_s = step_s;
        self
    }

    /// Checks every tuning parameter for physical plausibility: probabilities
    /// in range, magnitudes finite with the right sign, the drift-walk step a
    /// positive finite period. Called by [`crate::Simulator::new`] so a
    /// malformed model fails fast with a typed error instead of silently
    /// producing NaN latencies mid-run — the same validation idiom
    /// [`crate::SimConfig::validate`] and `stable_nc`'s
    /// `NodeConfig::validate` use.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let nonnegative = [
            ("jitter_sigma", self.jitter_sigma),
            ("drift_amplitude", self.drift_amplitude),
            ("route_changes_per_day", self.route_changes_per_day),
        ];
        for (name, value) in nonnegative {
            if !(value.is_finite() && value >= 0.0) {
                return Err(ConfigError::LinkParameterInvalid { name, value });
            }
        }
        let positive = [
            ("outlier_alpha", self.outlier_alpha),
            ("outlier_scale_factor", self.outlier_scale_factor),
            ("min_rtt_ms", self.min_rtt_ms),
        ];
        for (name, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(ConfigError::LinkParameterInvalid { name, value });
            }
        }
        if !(0.0..=1.0).contains(&self.outlier_probability) {
            return Err(ConfigError::LinkParameterInvalid {
                name: "outlier_probability",
                value: self.outlier_probability,
            });
        }
        if !(0.0..=1.0).contains(&self.loss_probability) {
            return Err(ConfigError::LossProbabilityOutOfRange(
                self.loss_probability,
            ));
        }
        if !(0.0..1.0).contains(&self.delay_asymmetry) {
            return Err(ConfigError::DelayAsymmetryOutOfRange(self.delay_asymmetry));
        }
        if !(self.drift_walk_step_s.is_finite() && self.drift_walk_step_s > 0.0) {
            return Err(ConfigError::DriftPeriodNotPositive(self.drift_walk_step_s));
        }
        if !(self.drift_walk_sigma.is_finite() && self.drift_walk_sigma >= 0.0) {
            return Err(ConfigError::DriftMagnitudeNotFinite(self.drift_walk_sigma));
        }
        Ok(())
    }
}

/// A route-change event: from `at_s` onward the base RTT is multiplied by
/// `factor`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct RouteShift {
    at_s: f64,
    factor: f64,
}

/// The observation model of one (directed) link.
#[derive(Debug, Clone)]
pub struct LinkModel {
    base_rtt_ms: f64,
    config: LinkModelConfig,
    rng: StdRng,
    drift_phase: f64,
    drift_period_s: f64,
    shifts: Vec<RouteShift>,
    /// Fixed forward-path share of the RTT: the forward one-way delay is
    /// `rtt / 2 * (1 + asymmetry_factor)`. Zero for symmetric links.
    asymmetry_factor: f64,
    /// Precomputed multiplicative random-walk levels, one per
    /// `drift_walk_step_s`; empty when the walk is disabled.
    /// `underlying_rtt_ms` interpolates linearly between consecutive levels
    /// so the migration is slow and continuous rather than a staircase.
    walk_levels: Vec<f64>,
}

impl LinkModel {
    /// Creates the model for a link with the given base RTT. `duration_s` is
    /// the length of the run being simulated (route-change times are drawn
    /// inside it); `seed` makes the link reproducible.
    ///
    /// # Panics
    ///
    /// Panics when `base_rtt_ms` is not positive and finite.
    pub fn new(base_rtt_ms: f64, config: LinkModelConfig, duration_s: f64, seed: u64) -> Self {
        assert!(
            base_rtt_ms.is_finite() && base_rtt_ms > 0.0,
            "base RTT must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let drift_phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let drift_period_s = rng.gen_range(3.0 * 3600.0..9.0 * 3600.0);
        let expected_shifts = config.route_changes_per_day * duration_s / 86_400.0;
        let shift_count = if expected_shifts <= 0.0 {
            0
        } else {
            // Poisson-ish: draw a small integer with the right mean.
            let mut count = 0usize;
            let mut budget = expected_shifts;
            while budget > 0.0 && rng.gen_range(0.0..1.0) < budget.min(1.0) {
                count += 1;
                budget -= 1.0;
            }
            count
        };
        let mut shifts: Vec<RouteShift> = (0..shift_count)
            .map(|_| RouteShift {
                at_s: rng.gen_range(0.0..duration_s.max(1.0)),
                factor: rng.gen_range(0.7..1.6),
            })
            .collect();
        shifts.sort_by(|a, b| a.at_s.partial_cmp(&b.at_s).expect("finite times"));
        // Drawn only when configured so that the rng stream — and therefore
        // every downstream jitter/outlier sample — is unchanged for
        // symmetric links (the pre-existing workloads). The closed interval
        // `[-a, a]` matches the `delay_asymmetry` contract: both extremes
        // (forward path carrying the whole asymmetry either way) are
        // admissible routes.
        let asymmetry_factor = if config.delay_asymmetry > 0.0 {
            rng.gen_range(-config.delay_asymmetry..=config.delay_asymmetry)
        } else {
            0.0
        };
        // Drawn last and only when enabled: sigma-0 links (every pre-walk
        // workload) consume no extra randomness, keeping their observation
        // streams byte-identical.
        let walk_levels = if config.drift_walk_sigma > 0.0 {
            let steps = (duration_s.max(0.0) / config.drift_walk_step_s).ceil() as usize + 1;
            let mut levels = Vec::with_capacity(steps + 1);
            let mut level = 1.0f64;
            levels.push(level);
            for _ in 0..steps {
                level *= rand_ext::lognormal(&mut rng, 0.0, config.drift_walk_sigma);
                level = level.clamp(0.25, 4.0);
                levels.push(level);
            }
            levels
        } else {
            Vec::new()
        };
        LinkModel {
            base_rtt_ms,
            config,
            rng,
            drift_phase,
            drift_period_s,
            shifts,
            asymmetry_factor,
            walk_levels,
        }
    }

    /// The link's configured base RTT (before drift and route shifts).
    pub fn base_rtt_ms(&self) -> f64 {
        self.base_rtt_ms
    }

    /// The *current* underlying latency at time `time_s`: base RTT with drift
    /// and any route shifts applied, but no jitter or outliers. This is the
    /// signal a perfect filter would recover.
    pub fn underlying_rtt_ms(&self, time_s: f64) -> f64 {
        let mut rtt = self.base_rtt_ms;
        for shift in &self.shifts {
            if time_s >= shift.at_s {
                rtt *= shift.factor;
            }
        }
        let drift = 1.0
            + self.config.drift_amplitude
                * (std::f64::consts::TAU * time_s / self.drift_period_s + self.drift_phase).sin();
        rtt *= drift;
        if !self.walk_levels.is_empty() {
            let last = self.walk_levels.len() - 1;
            let position = (time_s.max(0.0) / self.config.drift_walk_step_s).min(last as f64);
            let index = (position.floor() as usize).min(last);
            let next = (index + 1).min(last);
            let fraction = position - index as f64;
            let level = self.walk_levels[index]
                + (self.walk_levels[next] - self.walk_levels[index]) * fraction;
            rtt *= level;
        }
        rtt.max(self.config.min_rtt_ms)
    }

    /// Draws one observed RTT at time `time_s` (milliseconds).
    pub fn sample(&mut self, time_s: f64) -> f64 {
        let underlying = self.underlying_rtt_ms(time_s);
        let observed = if self.rng.gen_range(0.0..1.0) < self.config.outlier_probability {
            // Heavy-tail spike: the probe sat in a queue, the VM was
            // descheduled, or the packet was retransmitted.
            let scale = underlying * self.config.outlier_scale_factor;
            rand_ext::pareto(&mut self.rng, scale, self.config.outlier_alpha)
        } else {
            let sigma = self.config.jitter_sigma;
            underlying * rand_ext::lognormal(&mut self.rng, 0.0, sigma)
        };
        // Cap at two minutes: an application-level ping would have timed out.
        observed.clamp(self.config.min_rtt_ms, 120_000.0)
    }

    /// Number of route shifts scheduled for this link.
    pub fn route_shift_count(&self) -> usize {
        self.shifts.len()
    }

    /// Draws one per-direction loss decision: `true` when the packet is
    /// dropped. Consumes randomness only when the configured loss
    /// probability is positive, so loss-free links keep their exact
    /// observation streams.
    pub fn sample_loss(&mut self) -> bool {
        self.config.loss_probability > 0.0
            && self.rng.gen_range(0.0..1.0) < self.config.loss_probability
    }

    /// Splits a measured round-trip time into `(forward, reverse)` one-way
    /// delays in milliseconds, applying the link's fixed asymmetry factor.
    /// The two always sum to `rtt_ms`.
    pub fn one_way_split(&self, rtt_ms: f64) -> (f64, f64) {
        let forward = (rtt_ms / 2.0) * (1.0 + self.asymmetry_factor);
        (forward, rtt_ms - forward)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(base: f64, seed: u64) -> LinkModel {
        LinkModel::new(base, LinkModelConfig::default(), 4.0 * 3600.0, seed)
    }

    #[test]
    #[should_panic(expected = "base RTT must be positive")]
    fn rejects_nonpositive_base() {
        let _ = model(0.0, 1);
    }

    #[test]
    fn common_case_stays_near_base() {
        let mut m = model(80.0, 3);
        let samples: Vec<f64> = (0..10_000).map(|i| m.sample(i as f64)).collect();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            (median - 80.0).abs() < 12.0,
            "median {median:.1} should sit near the 80 ms base"
        );
    }

    #[test]
    fn heavy_tail_is_present_but_rare() {
        let mut m = model(60.0, 5);
        let samples: Vec<f64> = (0..50_000).map(|i| m.sample(i as f64)).collect();
        let big = samples.iter().filter(|&&v| v > 600.0).count();
        let frac = big as f64 / samples.len() as f64;
        assert!(frac > 0.001, "tail too light: {frac}");
        assert!(frac < 0.05, "tail too heavy: {frac}");
        // Order-of-magnitude outliers exist.
        assert!(samples.iter().any(|&v| v > 6_000.0));
    }

    #[test]
    fn aggregate_tail_fraction_matches_figure_2_order_of_magnitude() {
        // Across a mix of links, a fraction of samples in the vicinity of the
        // paper's 0.4% exceeds one second.
        let mut total = 0usize;
        let mut above_1s = 0usize;
        for (i, base) in [15.0, 40.0, 85.0, 140.0, 260.0].iter().enumerate() {
            let mut m = model(*base, 100 + i as u64);
            for t in 0..20_000 {
                let s = m.sample(t as f64);
                total += 1;
                if s >= 1_000.0 {
                    above_1s += 1;
                }
            }
        }
        let frac = above_1s as f64 / total as f64;
        assert!(
            frac > 0.0005 && frac < 0.02,
            "fraction above 1 s = {frac:.4}, expected near 0.4%"
        );
    }

    #[test]
    fn clean_config_has_no_outliers() {
        let mut m = LinkModel::new(50.0, LinkModelConfig::clean(), 3600.0, 9);
        let samples: Vec<f64> = (0..20_000).map(|i| m.sample(i as f64)).collect();
        assert!(samples.iter().all(|&v| v < 60.0), "clean links never spike");
        assert_eq!(m.route_shift_count(), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let mut a = model(70.0, 11);
        let mut b = model(70.0, 11);
        for t in 0..100 {
            assert_eq!(a.sample(t as f64), b.sample(t as f64));
        }
    }

    #[test]
    fn underlying_latency_changes_after_route_shift() {
        // Force a route change by using a long duration and high rate.
        let config = LinkModelConfig {
            route_changes_per_day: 24.0,
            ..LinkModelConfig::default()
        };
        let m = LinkModel::new(100.0, config, 86_400.0, 17);
        assert!(
            m.route_shift_count() > 0,
            "expected at least one route shift"
        );
        let early = m.underlying_rtt_ms(0.0);
        let late = m.underlying_rtt_ms(86_000.0);
        assert!(
            (early - late).abs() > 1.0,
            "underlying latency should change after shifts ({early:.1} vs {late:.1})"
        );
    }

    #[test]
    fn loss_free_links_never_drop_and_split_evenly() {
        let mut m = model(80.0, 31);
        for _ in 0..1_000 {
            assert!(!m.sample_loss());
        }
        let (fwd, rev) = m.one_way_split(90.0);
        assert_eq!(fwd, 45.0);
        assert_eq!(rev, 45.0);
    }

    #[test]
    fn loss_probability_drops_roughly_that_fraction() {
        let config = LinkModelConfig::default().with_loss_probability(0.1);
        let mut m = LinkModel::new(80.0, config, 3600.0, 31);
        let dropped = (0..20_000).filter(|_| m.sample_loss()).count();
        let frac = dropped as f64 / 20_000.0;
        assert!((frac - 0.1).abs() < 0.02, "loss fraction {frac:.3}");
    }

    #[test]
    fn asymmetric_links_split_unevenly_but_conserve_rtt() {
        let config = LinkModelConfig::default().with_delay_asymmetry(0.4);
        let mut found_asymmetric = false;
        for seed in 0..8 {
            let m = LinkModel::new(80.0, config.clone(), 3600.0, seed);
            let (fwd, rev) = m.one_way_split(100.0);
            assert!((fwd + rev - 100.0).abs() < 1e-9);
            assert!(fwd > 0.0 && rev > 0.0);
            if (fwd - rev).abs() > 1.0 {
                found_asymmetric = true;
            }
        }
        assert!(found_asymmetric, "some links should be visibly asymmetric");
    }

    #[test]
    fn asymmetry_factor_stays_in_the_documented_closed_interval() {
        // The `delay_asymmetry` contract promises a factor in the *closed*
        // interval `[-a, a]`: both extremes are admissible routes and the
        // sampling is inclusive. Recover the drawn factor from the one-way
        // split ( fwd = rtt/2·(1+f), rev = rtt/2·(1−f) ⇒ f = (fwd−rev)/rtt )
        // across many links and pin the bound.
        let a = 0.25;
        let config = LinkModelConfig::default().with_delay_asymmetry(a);
        let mut max_magnitude: f64 = 0.0;
        for seed in 0..512 {
            let m = LinkModel::new(80.0, config.clone(), 3600.0, seed);
            let (fwd, rev) = m.one_way_split(100.0);
            let factor = (fwd - rev) / 100.0;
            assert!(
                (-a..=a).contains(&factor),
                "factor {factor} escaped [-{a}, {a}] (seed {seed})"
            );
            max_magnitude = max_magnitude.max(factor.abs());
        }
        // The draws genuinely range over the interval rather than
        // collapsing near zero.
        assert!(max_magnitude > 0.9 * a, "max |factor| {max_magnitude}");
    }

    #[test]
    fn enabling_loss_does_not_change_the_observation_stream() {
        // Loss decisions draw from the same rng, but only *between* samples;
        // a run that samples first sees identical observations either way.
        let lossy_config = LinkModelConfig::default().with_loss_probability(0.05);
        let mut plain = model(70.0, 11);
        let mut lossy = LinkModel::new(70.0, lossy_config, 4.0 * 3600.0, 11);
        // Before any loss decision is drawn, the streams agree; afterwards
        // the lossy link diverges (it consumed randomness), which is
        // expected — the invariant that matters is that a loss-free config
        // never consumes extra randomness, checked below.
        assert_eq!(plain.sample(0.0), lossy.sample(0.0));
        let _ = lossy.sample_loss();
        let mut a = model(70.0, 12);
        let mut b = model(70.0, 12);
        for t in 0..100 {
            assert!(!b.sample_loss());
            assert_eq!(a.sample(t as f64), b.sample(t as f64));
        }
    }

    #[test]
    fn loss_probability_must_be_a_probability() {
        // Setters no longer panic; the bad value is carried until validate,
        // where it comes back as a typed error.
        let config = LinkModelConfig::default().with_loss_probability(1.5);
        assert_eq!(
            config.validate(),
            Err(ConfigError::LossProbabilityOutOfRange(1.5))
        );
    }

    #[test]
    fn delay_asymmetry_must_leave_both_directions_positive() {
        let config = LinkModelConfig::default().with_delay_asymmetry(1.0);
        assert_eq!(
            config.validate(),
            Err(ConfigError::DelayAsymmetryOutOfRange(1.0))
        );
    }

    #[test]
    fn validate_rejects_unphysical_tuning_parameters() {
        for (mutate, name) in [
            (
                (|c: &mut LinkModelConfig| c.jitter_sigma = -0.1) as fn(&mut LinkModelConfig),
                "jitter_sigma",
            ),
            (|c| c.outlier_probability = 1.2, "outlier_probability"),
            (|c| c.outlier_alpha = 0.0, "outlier_alpha"),
            (
                |c| c.outlier_scale_factor = f64::NAN,
                "outlier_scale_factor",
            ),
            (|c| c.drift_amplitude = f64::INFINITY, "drift_amplitude"),
            (|c| c.route_changes_per_day = -1.0, "route_changes_per_day"),
            (|c| c.min_rtt_ms = 0.0, "min_rtt_ms"),
        ] {
            let mut config = LinkModelConfig::default();
            mutate(&mut config);
            assert!(
                matches!(
                    config.validate(),
                    Err(ConfigError::LinkParameterInvalid { name: n, .. }) if n == name
                ),
                "{name} should be rejected, got {:?}",
                config.validate()
            );
        }
    }

    #[test]
    fn disabled_drift_walk_preserves_the_observation_stream() {
        // A sigma-0 walk draws nothing at construction, so the whole
        // downstream jitter/outlier stream is byte-identical whatever the
        // step length is set to.
        let stepped = LinkModelConfig {
            drift_walk_step_s: 60.0,
            ..LinkModelConfig::default()
        };
        let mut a = model(70.0, 41);
        let mut b = LinkModel::new(70.0, stepped, 4.0 * 3600.0, 41);
        for t in 0..200 {
            assert_eq!(a.sample(t as f64), b.sample(t as f64));
        }
        assert_eq!(a.underlying_rtt_ms(1234.5), b.underlying_rtt_ms(1234.5));
    }

    #[test]
    fn drift_walk_migrates_the_underlying_latency_over_hours() {
        let config = LinkModelConfig::clean().with_drift_walk(0.2, 1800.0);
        let mut moved = false;
        for seed in 0..8 {
            let m = LinkModel::new(100.0, config.clone(), 8.0 * 3600.0, seed);
            let early = m.underlying_rtt_ms(0.0);
            let late = m.underlying_rtt_ms(6.0 * 3600.0);
            // Levels are clamped so the walk stays physical.
            assert!((100.0 * 0.25 - 1e-9..=100.0 * 4.0 + 1e-9).contains(&late));
            if (late - early).abs() > 5.0 {
                moved = true;
            }
        }
        assert!(moved, "an hours-long walk should visibly migrate the base");
    }

    #[test]
    fn drift_walk_interpolates_between_steps() {
        // Between two step boundaries the underlying latency moves
        // monotonically from one level towards the next — a ramp, not a
        // staircase.
        let config = LinkModelConfig::clean().with_drift_walk(0.3, 600.0);
        let m = LinkModel::new(100.0, config, 3600.0, 7);
        let at_step = m.underlying_rtt_ms(600.0);
        let next_step = m.underlying_rtt_ms(1200.0);
        let midpoint = m.underlying_rtt_ms(900.0);
        let (lo, hi) = if at_step <= next_step {
            (at_step, next_step)
        } else {
            (next_step, at_step)
        };
        assert!(
            midpoint >= lo - 1e-9 && midpoint <= hi + 1e-9,
            "midpoint {midpoint} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn validate_rejects_malformed_drift_configs() {
        let bad_period = LinkModelConfig {
            drift_walk_step_s: 0.0,
            ..LinkModelConfig::default()
        };
        assert!(matches!(
            bad_period.validate(),
            Err(ConfigError::DriftPeriodNotPositive(_))
        ));
        let bad_sigma = LinkModelConfig {
            drift_walk_sigma: f64::NAN,
            ..LinkModelConfig::default()
        };
        assert!(matches!(
            bad_sigma.validate(),
            Err(ConfigError::DriftMagnitudeNotFinite(_))
        ));
        assert!(LinkModelConfig::default().validate().is_ok());
    }

    #[test]
    fn with_drift_walk_defers_range_errors_to_validate() {
        let config = LinkModelConfig::default().with_drift_walk(0.1, -5.0);
        assert_eq!(
            config.validate(),
            Err(ConfigError::DriftPeriodNotPositive(-5.0))
        );
    }

    #[test]
    fn samples_respect_floor_and_cap() {
        let mut m = LinkModel::new(0.5, LinkModelConfig::default(), 3600.0, 23);
        for t in 0..5_000 {
            let s = m.sample(t as f64);
            assert!(s >= 0.3);
            assert!(s <= 120_000.0);
        }
    }
}
