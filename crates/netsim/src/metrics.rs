//! Collection of the paper's evaluation metrics.
//!
//! Accuracy is the per-node distribution of relative errors; stability is the
//! rate of coordinate change (milliseconds of movement in the coordinate
//! space per second of wall-clock time), reported per node and in aggregate;
//! application-level health additionally tracks how often the published
//! coordinate changes. All metrics are accumulated only after the
//! `measurement_start` so start-up transients can be excluded, exactly as the
//! paper reports "the second half of the run".

use nc_stats::{percentile, Ecdf, StatsError, StreamingSummary};
use nc_vivaldi::Coordinate;
use serde::{Deserialize, Serialize};
use stable_nc::FxHashMap;

/// Per-node metric accumulators.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// `(time_s, relative_error)` of every accepted observation, measured
    /// against the system-level coordinate before its update.
    pub system_errors: Vec<(f64, f64)>,
    /// `(time_s, relative_error)` measured against the application-level
    /// coordinate.
    pub application_errors: Vec<(f64, f64)>,
    /// `(time_s, displacement_ms)` of every system-level coordinate movement.
    pub system_displacements: Vec<(f64, f64)>,
    /// `(time_s, displacement_ms)` of every published application-level
    /// update.
    pub application_displacements: Vec<(f64, f64)>,
    /// Number of raw observations seen during the measurement window.
    pub observations: u64,
    /// Number of probes this node sent that expired without a reply
    /// (link loss, partitions, or a dead target). Counted over the whole
    /// run — a fully dead link produces no accepted observations to gate a
    /// measurement window on.
    pub probes_lost: u64,
    /// Number of probe replies this node dropped because they correlated
    /// with no outstanding probe — replies that arrived after their probe
    /// already timed out (an RTT beyond the probe timeout), duplicated
    /// datagrams, or replies from evicted peers. Counted over the whole run,
    /// like losses.
    pub responses_ignored: u64,
    /// Number of probes this node issued, counted over the whole run at the
    /// instant of sending — lost or answered alike.
    pub probes_sent: u64,
    /// Number of probe replies this node digested (correlated and handed to
    /// the observation pipeline), counted over the whole run. The
    /// measurement-window-gated counterpart is `observations`.
    pub responses_received: u64,
    /// Number of peers this node evicted after a loss streak reached
    /// `max_consecutive_losses`, counted over the whole run.
    pub neighbors_evicted: u64,
    /// Number of filtered observations the node's engine rejected before
    /// they reached the coordinate update — Vivaldi plausibility rejections
    /// plus, when the MAD outlier gate is enabled, observations whose
    /// filtered RTT contradicts the coordinate-predicted distance. Counted
    /// over the whole run, like losses.
    pub observations_rejected: u64,
}

impl NodeMetrics {
    /// Median of the node's system-level relative errors.
    pub fn median_relative_error(&self) -> Result<f64, StatsError> {
        let errors: Vec<f64> = self.system_errors.iter().map(|(_, e)| *e).collect();
        percentile(&errors, 50.0)
    }

    /// 95th percentile of the node's system-level relative errors.
    pub fn p95_relative_error(&self) -> Result<f64, StatsError> {
        let errors: Vec<f64> = self.system_errors.iter().map(|(_, e)| *e).collect();
        percentile(&errors, 95.0)
    }

    /// Median of the node's application-level relative errors.
    pub fn application_median_relative_error(&self) -> Result<f64, StatsError> {
        let errors: Vec<f64> = self.application_errors.iter().map(|(_, e)| *e).collect();
        percentile(&errors, 50.0)
    }

    /// 95th percentile of the node's application-level relative errors.
    pub fn application_p95_relative_error(&self) -> Result<f64, StatsError> {
        let errors: Vec<f64> = self.application_errors.iter().map(|(_, e)| *e).collect();
        percentile(&errors, 95.0)
    }

    /// 95th percentile of the node's per-observation coordinate change
    /// (Figure 5, third panel).
    pub fn p95_coordinate_change(&self) -> Result<f64, StatsError> {
        let moves: Vec<f64> = self.system_displacements.iter().map(|(_, d)| *d).collect();
        percentile(&moves, 95.0)
    }

    /// Total system-level coordinate movement during the measurement window.
    pub fn total_system_displacement_ms(&self) -> f64 {
        self.system_displacements.iter().map(|(_, d)| d).sum()
    }

    /// Total application-level coordinate movement during the window.
    pub fn total_application_displacement_ms(&self) -> f64 {
        self.application_displacements.iter().map(|(_, d)| d).sum()
    }

    /// System-level instability: coordinate movement per second (ms/s).
    pub fn instability(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            0.0
        } else {
            self.total_system_displacement_ms() / duration_s
        }
    }

    /// Application-level instability (ms/s).
    pub fn application_instability(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            0.0
        } else {
            self.total_application_displacement_ms() / duration_s
        }
    }

    /// Number of application-level updates during the window.
    pub fn application_update_count(&self) -> usize {
        self.application_displacements.len()
    }

    /// Median of the system-level relative errors sampled in `[from_s,
    /// to_s)` — the windowed accuracy used to compare a mesh before and
    /// after a churn event.
    pub fn median_relative_error_between(&self, from_s: f64, to_s: f64) -> Result<f64, StatsError> {
        let errors: Vec<f64> = self
            .system_errors
            .iter()
            .filter(|(t, _)| *t >= from_s && *t < to_s)
            .map(|(_, e)| *e)
            .collect();
        percentile(&errors, 50.0)
    }
}

/// A tracked coordinate sample (for the Figure 7 trajectory plot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackedCoordinate {
    /// Sample time in seconds.
    pub time_s: f64,
    /// Index of the tracked node.
    pub node: usize,
    /// The node's system-level coordinate at that time.
    pub system: Coordinate,
    /// The node's application-level coordinate at that time.
    pub application: Coordinate,
}

/// Metrics of one configuration (one coordinate stack run over the whole
/// workload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigMetrics {
    /// Per-node accumulators, indexed by node id.
    pub nodes: Vec<NodeMetrics>,
    /// Length of the measurement window in seconds.
    pub measurement_duration_s: f64,
    /// Tracked coordinate trajectories (empty unless tracking was requested).
    pub tracked: Vec<TrackedCoordinate>,
    /// Number of scripted scenario actions applied over the run (joins,
    /// leaves, crashes, restarts, partitions), counted once per action.
    pub scenario_ops: u64,
}

impl ConfigMetrics {
    /// Creates empty accumulators for `node_count` nodes.
    pub fn new(node_count: usize, measurement_duration_s: f64) -> Self {
        ConfigMetrics {
            nodes: vec![NodeMetrics::default(); node_count],
            measurement_duration_s,
            tracked: Vec::new(),
            scenario_ops: 0,
        }
    }

    /// Per-node median relative error (system level), skipping nodes without
    /// samples.
    pub fn median_relative_errors(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.median_relative_error().ok())
            .collect()
    }

    /// Per-node 95th-percentile relative error (system level).
    pub fn p95_relative_errors(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.p95_relative_error().ok())
            .collect()
    }

    /// Per-node median relative error measured against the application-level
    /// coordinate.
    pub fn application_median_relative_errors(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.application_median_relative_error().ok())
            .collect()
    }

    /// Per-node 95th-percentile application-level relative error.
    pub fn application_p95_relative_errors(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.application_p95_relative_error().ok())
            .collect()
    }

    /// Per-node 95th-percentile coordinate change.
    pub fn p95_coordinate_changes(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .filter_map(|n| n.p95_coordinate_change().ok())
            .collect()
    }

    /// Per-node system-level instability (ms/s).
    pub fn per_node_instability(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .map(|n| n.instability(self.measurement_duration_s))
            .collect()
    }

    /// Per-node application-level instability (ms/s).
    pub fn per_node_application_instability(&self) -> Vec<f64> {
        self.nodes
            .iter()
            .map(|n| n.application_instability(self.measurement_duration_s))
            .collect()
    }

    /// Aggregate system-level instability: total coordinate movement of all
    /// nodes per second — the paper's headline stability number (Table I,
    /// Figure 13).
    pub fn aggregate_instability(&self) -> f64 {
        self.per_node_instability().iter().sum()
    }

    /// Aggregate application-level instability.
    pub fn aggregate_application_instability(&self) -> f64 {
        self.per_node_application_instability().iter().sum()
    }

    /// Median over nodes of the per-node median relative error — the single
    /// accuracy number quoted in Table I and the threshold sweeps.
    pub fn median_of_median_relative_error(&self) -> f64 {
        percentile(&self.median_relative_errors(), 50.0).unwrap_or(f64::NAN)
    }

    /// Median over nodes of the per-node 95th-percentile relative error
    /// (the Figure 13 headline).
    pub fn median_of_p95_relative_error(&self) -> f64 {
        percentile(&self.p95_relative_errors(), 50.0).unwrap_or(f64::NAN)
    }

    /// Median over nodes of the application-level median relative error.
    pub fn median_of_application_median_relative_error(&self) -> f64 {
        percentile(&self.application_median_relative_errors(), 50.0).unwrap_or(f64::NAN)
    }

    /// Median over nodes of the application-level 95th-percentile relative
    /// error.
    pub fn median_of_application_p95_relative_error(&self) -> f64 {
        percentile(&self.application_p95_relative_errors(), 50.0).unwrap_or(f64::NAN)
    }

    /// Fraction of nodes that publish an application-level update in an
    /// average second (Figure 9, bottom panel).
    pub fn application_updates_per_node_second(&self) -> f64 {
        if self.measurement_duration_s <= 0.0 || self.nodes.is_empty() {
            return 0.0;
        }
        let total_updates: usize = self
            .nodes
            .iter()
            .map(|n| n.application_update_count())
            .sum();
        total_updates as f64 / (self.measurement_duration_s * self.nodes.len() as f64)
    }

    /// Empirical CDF of per-node median relative error (Figure 5 top /
    /// Figure 11 top).
    pub fn median_relative_error_cdf(&self) -> Result<Ecdf, StatsError> {
        Ecdf::new(self.median_relative_errors())
    }

    /// Empirical CDF of per-node 95th-percentile relative error (Figure 13
    /// top).
    pub fn p95_relative_error_cdf(&self) -> Result<Ecdf, StatsError> {
        Ecdf::new(self.p95_relative_errors())
    }

    /// Empirical CDF of per-node instability (Figure 5 bottom / Figure 13
    /// bottom).
    pub fn instability_cdf(&self) -> Result<Ecdf, StatsError> {
        Ecdf::new(self.per_node_instability())
    }

    /// Empirical CDF of per-node application-level instability (Figure 11
    /// bottom).
    pub fn application_instability_cdf(&self) -> Result<Ecdf, StatsError> {
        Ecdf::new(self.per_node_application_instability())
    }

    /// Total probes lost across all nodes over the whole run (timeouts from
    /// link loss, partitions and crashed targets).
    pub fn total_probes_lost(&self) -> u64 {
        self.nodes.iter().map(|n| n.probes_lost).sum()
    }

    /// Total uncorrelated probe replies dropped across all nodes over the
    /// whole run (late arrivals after a timeout, duplicates, replies from
    /// evicted peers).
    pub fn total_responses_ignored(&self) -> u64 {
        self.nodes.iter().map(|n| n.responses_ignored).sum()
    }

    /// Total probes issued across all nodes over the whole run.
    pub fn total_probes_sent(&self) -> u64 {
        self.nodes.iter().map(|n| n.probes_sent).sum()
    }

    /// Total probe replies digested across all nodes over the whole run.
    pub fn total_responses_received(&self) -> u64 {
        self.nodes.iter().map(|n| n.responses_received).sum()
    }

    /// Total loss-streak evictions across all nodes over the whole run.
    pub fn total_neighbors_evicted(&self) -> u64 {
        self.nodes.iter().map(|n| n.neighbors_evicted).sum()
    }

    /// Total engine-side observation rejections across all nodes over the
    /// whole run (Vivaldi plausibility plus the MAD outlier gate).
    pub fn total_observations_rejected(&self) -> u64 {
        self.nodes.iter().map(|n| n.observations_rejected).sum()
    }

    /// Median of every system-level relative error sampled in `[from_s,
    /// to_s)`, pooled across nodes. This is the number the churn acceptance
    /// criterion compares pre-crash against end-of-run.
    pub fn pooled_median_relative_error_between(
        &self,
        from_s: f64,
        to_s: f64,
    ) -> Result<f64, StatsError> {
        let errors: Vec<f64> = self
            .nodes
            .iter()
            .flat_map(|n| n.system_errors.iter())
            .filter(|(t, _)| *t >= from_s && *t < to_s)
            .map(|(_, e)| *e)
            .collect();
        percentile(&errors, 50.0)
    }

    /// Summary of every system-level relative error sample pooled across
    /// nodes (handy for quick sanity checks).
    pub fn pooled_error_summary(&self) -> StreamingSummary {
        self.nodes
            .iter()
            .flat_map(|n| n.system_errors.iter().map(|(_, e)| *e))
            .collect()
    }
}

/// The result of one simulation run: metrics per named configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    configs: FxHashMap<String, ConfigMetrics>,
    /// Total simulated duration in seconds.
    pub duration_s: f64,
    /// Time at which measurement started (warm-up exclusion).
    pub measurement_start_s: f64,
}

impl SimReport {
    /// Builds a report from named per-configuration metrics.
    pub fn new(
        configs: FxHashMap<String, ConfigMetrics>,
        duration_s: f64,
        measurement_start_s: f64,
    ) -> Self {
        SimReport {
            configs,
            duration_s,
            measurement_start_s,
        }
    }

    /// Metrics of the named configuration, if it was part of the run.
    pub fn config(&self, name: &str) -> Option<&ConfigMetrics> {
        self.configs.get(name)
    }

    /// Names of all configurations in the run.
    pub fn config_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.configs.keys().map(|s| s.as_str()).collect();
        names.sort();
        names
    }

    /// Iterates over `(name, metrics)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ConfigMetrics)> {
        let mut entries: Vec<(&str, &ConfigMetrics)> =
            self.configs.iter().map(|(k, v)| (k.as_str(), v)).collect();
        entries.sort_by_key(|(k, _)| *k);
        entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_with(errors: &[f64], displacements: &[f64]) -> NodeMetrics {
        NodeMetrics {
            system_errors: errors
                .iter()
                .enumerate()
                .map(|(i, &e)| (i as f64, e))
                .collect(),
            application_errors: errors
                .iter()
                .enumerate()
                .map(|(i, &e)| (i as f64, e / 2.0))
                .collect(),
            system_displacements: displacements
                .iter()
                .enumerate()
                .map(|(i, &d)| (i as f64, d))
                .collect(),
            application_displacements: vec![(0.0, 1.0)],
            observations: errors.len() as u64,
            probes_lost: 0,
            responses_ignored: 0,
            probes_sent: 0,
            responses_received: 0,
            neighbors_evicted: 0,
            observations_rejected: 0,
        }
    }

    #[test]
    fn node_metrics_percentiles() {
        let n = node_with(&[0.1, 0.2, 0.3, 0.4, 10.0], &[1.0, 2.0, 3.0]);
        assert_eq!(n.median_relative_error().unwrap(), 0.3);
        assert!(n.p95_relative_error().unwrap() > 1.0);
        assert_eq!(n.total_system_displacement_ms(), 6.0);
        assert_eq!(n.instability(3.0), 2.0);
        assert_eq!(n.application_update_count(), 1);
        assert_eq!(n.application_instability(1.0), 1.0);
    }

    #[test]
    fn empty_node_metrics_are_errors_not_panics() {
        let n = NodeMetrics::default();
        assert!(n.median_relative_error().is_err());
        assert_eq!(n.instability(10.0), 0.0);
        assert_eq!(n.application_update_count(), 0);
    }

    #[test]
    fn config_metrics_aggregate() {
        let mut cm = ConfigMetrics::new(2, 10.0);
        cm.nodes[0] = node_with(&[0.1, 0.2], &[5.0, 5.0]);
        cm.nodes[1] = node_with(&[0.3, 0.4], &[10.0, 10.0]);
        assert_eq!(cm.median_relative_errors().len(), 2);
        // Node 0 moves 10 ms over 10 s = 1 ms/s; node 1 moves 2 ms/s.
        assert!((cm.aggregate_instability() - 3.0).abs() < 1e-12);
        assert!((cm.median_of_median_relative_error() - 0.25).abs() < 1e-9);
        // Two updates (one per node) over 10 s and 2 nodes → 0.1 updates per node-second.
        assert!((cm.application_updates_per_node_second() - 0.1).abs() < 1e-12);
        assert!(cm.median_relative_error_cdf().is_ok());
        assert!(cm.instability_cdf().is_ok());
    }

    #[test]
    fn report_lookup_and_ordering() {
        let mut map = FxHashMap::default();
        map.insert("raw".to_string(), ConfigMetrics::new(1, 5.0));
        map.insert("mp".to_string(), ConfigMetrics::new(1, 5.0));
        let report = SimReport::new(map, 10.0, 5.0);
        assert!(report.config("raw").is_some());
        assert!(report.config("missing").is_none());
        assert_eq!(report.config_names(), vec!["mp", "raw"]);
        let order: Vec<&str> = report.iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec!["mp", "raw"]);
    }

    #[test]
    fn pooled_summary_counts_all_samples() {
        let mut cm = ConfigMetrics::new(2, 10.0);
        cm.nodes[0] = node_with(&[0.1, 0.2], &[1.0]);
        cm.nodes[1] = node_with(&[0.3], &[1.0]);
        assert_eq!(cm.pooled_error_summary().count(), 3);
    }

    #[test]
    fn probe_losses_aggregate_across_nodes() {
        let mut cm = ConfigMetrics::new(3, 10.0);
        cm.nodes[0].probes_lost = 2;
        cm.nodes[2].probes_lost = 5;
        assert_eq!(cm.total_probes_lost(), 7);
    }

    #[test]
    fn windowed_medians_filter_by_time() {
        // node_with stamps sample i at time i seconds.
        let n = node_with(&[0.1, 0.2, 0.3, 0.4, 0.5], &[1.0]);
        assert_eq!(n.median_relative_error_between(0.0, 2.5).unwrap(), 0.2);
        assert_eq!(n.median_relative_error_between(3.0, 100.0).unwrap(), 0.45);
        assert!(n.median_relative_error_between(50.0, 60.0).is_err());

        let mut cm = ConfigMetrics::new(2, 10.0);
        cm.nodes[0] = node_with(&[0.1, 0.2], &[1.0]);
        cm.nodes[1] = node_with(&[0.3, 0.4], &[1.0]);
        let pooled = cm.pooled_median_relative_error_between(0.0, 10.0).unwrap();
        assert!((pooled - 0.25).abs() < 1e-9);
    }
}
