//! The synthetic PlanetLab workload.
//!
//! This module replaces the paper's measurement artifacts — the three-day
//! all-pairs ping trace over 269 PlanetLab nodes and the four-hour live
//! deployment over 270 nodes — with a parameterised synthetic equivalent
//! built from [`crate::topology`] and [`crate::linkmodel`]. `DESIGN.md` §3
//! documents why the substitution preserves the behaviours the paper's
//! findings depend on.

use serde::{Deserialize, Serialize};

use crate::linkmodel::LinkModelConfig;
use crate::topology::Topology;

/// Describes a synthetic PlanetLab-like network: how many nodes exist and how
/// their links behave.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanetLabConfig {
    node_count: usize,
    seed: u64,
    link_config: LinkModelConfig,
}

impl PlanetLabConfig {
    /// The scale of the paper's trace: 269 nodes.
    pub fn paper_scale() -> Self {
        PlanetLabConfig {
            node_count: 269,
            seed: 20050502,
            link_config: LinkModelConfig::default(),
        }
    }

    /// The scale of the paper's live deployment (§VI): 270 nodes.
    pub fn deployment_scale() -> Self {
        PlanetLabConfig {
            node_count: 270,
            seed: 20050624,
            link_config: LinkModelConfig::default(),
        }
    }

    /// A reduced workload with `node_count` nodes, for unit tests, examples
    /// and quick experiment runs. The latency model is unchanged; only the
    /// mesh is smaller.
    ///
    /// # Panics
    ///
    /// Panics when `node_count < 2`.
    pub fn small(node_count: usize) -> Self {
        assert!(node_count >= 2, "a workload needs at least two nodes");
        PlanetLabConfig {
            node_count,
            seed: 7,
            link_config: LinkModelConfig::default(),
        }
    }

    /// Number of nodes in the workload.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The random seed the topology and link models derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shared per-link observation model configuration.
    pub fn link_config(&self) -> &LinkModelConfig {
        &self.link_config
    }

    /// Replaces the seed (different seeds give statistically identical but
    /// numerically different workloads — used for repeated trials).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the link observation model.
    pub fn with_link_config(mut self, link_config: LinkModelConfig) -> Self {
        self.link_config = link_config;
        self
    }

    /// Builds the node placement for this workload.
    pub fn build_topology(&self) -> Topology {
        Topology::generate(self.node_count, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scales_match_the_paper() {
        assert_eq!(PlanetLabConfig::paper_scale().node_count(), 269);
        assert_eq!(PlanetLabConfig::deployment_scale().node_count(), 270);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn small_rejects_one_node() {
        let _ = PlanetLabConfig::small(1);
    }

    #[test]
    fn builders_apply() {
        let config = PlanetLabConfig::small(12)
            .with_seed(99)
            .with_link_config(LinkModelConfig::clean());
        assert_eq!(config.seed(), 99);
        assert_eq!(config.link_config(), &LinkModelConfig::clean());
        assert_eq!(config.build_topology().len(), 12);
    }

    #[test]
    fn same_seed_same_topology() {
        let a = PlanetLabConfig::small(20).with_seed(5).build_topology();
        let b = PlanetLabConfig::small(20).with_seed(5).build_topology();
        assert_eq!(a, b);
    }
}
