//! The transport's monotonic clock.
//!
//! The sans-I/O engine never reads a clock; every timestamp it sees is a
//! driver-supplied `u64` of milliseconds. [`MonoClock`] is the transport's
//! source for those values: a process-local monotonic origin, immune to
//! wall-clock steps (NTP, suspend/resume would still pause it, which is the
//! right failure mode — a paused node's probes time out and that is true).
//!
//! Round-trip times are *not* computed from this millisecond clock: the
//! runtime keeps the [`std::time::Instant`] each probe left at and stamps
//! the reply with the sub-millisecond elapsed time, so loopback and LAN
//! RTTs keep their precision.

use std::time::Instant;

/// A monotonic millisecond clock anchored at its creation.
#[derive(Debug, Clone, Copy)]
pub struct MonoClock {
    origin: Instant,
}

impl MonoClock {
    /// Creates a clock reading `0` now.
    pub fn new() -> Self {
        MonoClock {
            origin: Instant::now(),
        }
    }

    /// Milliseconds elapsed since the clock was created.
    pub fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

impl Default for MonoClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_starts_near_zero() {
        let clock = MonoClock::new();
        let first = clock.now_ms();
        assert!(first < 1_000, "a fresh clock reads near zero: {first}");
        let mut last = first;
        for _ in 0..100 {
            let now = clock.now_ms();
            assert!(now >= last);
            last = now;
        }
    }
}
