//! Real sockets for the stable-coordinates stack: a deployable,
//! dependency-free UDP transport around the sans-I/O engine.
//!
//! The engine in `stable-nc` was designed so that a driver owns all I/O and
//! time; this crate is that driver for an actual network:
//!
//! * [`NodeRuntime`] — a threaded per-process runtime: a socket thread
//!   answering probes and stamping measured RTTs, and a tick thread walking
//!   a [`TimerWheel`] to fire probes, expire the pending table and print
//!   stats. Peers are identified by their `SocketAddr`; datagrams carry the
//!   compact binary codec of `nc_proto::binary`. Graceful shutdown persists
//!   a [`NodeSnapshot`](nc_proto::NodeSnapshot); starting with the same
//!   snapshot path restores the node, which rejoins the overlay without
//!   resetting its coordinate.
//! * [`DelayHarness`] — an emulated network over `127.0.0.1`: per-link
//!   one-way delays, jitter (and with it reordering), loss and duplication
//!   between real runtimes, for integration tests and demos that need
//!   deployment conditions without a deployment.
//! * the `nc-node` binary — one node per process: bind, seed, probe, print
//!   stats, snapshot on exit.
//!
//! # Quickstart: two nodes on loopback
//!
//! ```
//! use nc_transport::{NodeRuntime, RuntimeConfig};
//!
//! let a = NodeRuntime::bind("127.0.0.1:0".parse().unwrap(), RuntimeConfig {
//!     probe_interval_ms: 5,
//!     probe_timeout_ms: 100,
//!     ..RuntimeConfig::default()
//! }).unwrap();
//! let b = NodeRuntime::bind("127.0.0.1:0".parse().unwrap(), RuntimeConfig {
//!     seeds: vec![a.local_addr()],
//!     probe_interval_ms: 5,
//!     probe_timeout_ms: 100,
//!     ..RuntimeConfig::default()
//! }).unwrap();
//!
//! std::thread::sleep(std::time::Duration::from_millis(300));
//! assert!(b.stats().probes_sent > 0);
//! assert!(b.stats().responses_received > 0);
//! let snapshot = b.shutdown().unwrap();
//! assert!(snapshot.observations > 0);
//! a.shutdown().unwrap();
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod clock;
pub mod harness;
pub mod persist;
pub mod runtime;
pub mod wheel;

pub use clock::MonoClock;
pub use harness::{DelayHarness, HarnessBuilder, LinkSpec};
pub use persist::{load_snapshot, save_snapshot};
pub use runtime::{NodeRuntime, RuntimeConfig, RuntimeStats};
pub use wheel::TimerWheel;
