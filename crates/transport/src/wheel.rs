//! A hashed timer wheel for the node runtime's tick thread.
//!
//! The runtime has a handful of recurring deadlines (send the next probe,
//! sweep the pending table, print a stats line) and wants to poll them from
//! one loop without allocating or sorting per tick. A classic hashed wheel
//! does exactly that: deadlines hash into `slots` by time, the cursor walks
//! the slots as time passes, and each visited slot is drained of the
//! entries that are actually due (entries scheduled whole laps ahead stay
//! put until their lap comes around).

/// A fixed-size hashed timer wheel over driver-clock milliseconds.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<(u64, T)>>,
    granularity_ms: u64,
    /// Wheel time already swept, in milliseconds.
    swept_ms: u64,
}

impl<T> TimerWheel<T> {
    /// Creates a wheel of `slots` buckets, each `granularity_ms` wide. The
    /// wheel spans `slots × granularity_ms` per lap; longer deadlines simply
    /// wait additional laps.
    ///
    /// # Panics
    ///
    /// Panics when `slots` is zero or `granularity_ms` is zero.
    pub fn new(slots: usize, granularity_ms: u64) -> Self {
        assert!(slots > 0, "a wheel needs at least one slot");
        assert!(granularity_ms > 0, "granularity must be positive");
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            granularity_ms,
            swept_ms: 0,
        }
    }

    fn slot_of(&self, at_ms: u64) -> usize {
        ((at_ms / self.granularity_ms) as usize) % self.slots.len()
    }

    /// Schedules `token` to fire at `at_ms`. Deadlines at or before the last
    /// sweep fire on the very next [`advance`](TimerWheel::advance).
    pub fn schedule(&mut self, at_ms: u64, token: T) {
        // A deadline the sweep has already passed would otherwise wait a
        // whole lap; park it in the slot the next sweep visits first.
        let effective = at_ms.max(self.swept_ms);
        let slot = self.slot_of(effective);
        self.slots[slot].push((at_ms, token));
    }

    /// Sweeps the wheel up to `now_ms`, appending every due token to `due`
    /// (in slot order; tokens within a slot fire in insertion order).
    pub fn advance(&mut self, now_ms: u64, due: &mut Vec<T>) {
        if now_ms < self.swept_ms {
            return;
        }
        let lap = self.slots.len() as u64;
        let from_tick = self.swept_ms / self.granularity_ms;
        let to_tick = now_ms / self.granularity_ms;
        // Visiting more than one full lap would re-visit slots; cap it.
        let steps = (to_tick - from_tick).min(lap);
        for offset in 0..=steps {
            let index = ((from_tick + offset) % lap) as usize;
            let slot = &mut self.slots[index];
            let mut k = 0;
            while k < slot.len() {
                if slot[k].0 <= now_ms {
                    due.push(slot.swap_remove(k).1);
                } else {
                    k += 1;
                }
            }
        }
        self.swept_ms = now_ms;
    }

    /// The earliest scheduled deadline, or `None` when the wheel is empty.
    /// Linear in the number of parked entries — meant for drivers with a
    /// handful of recurring timers deciding how long to sleep.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        self.slots
            .iter()
            .flatten()
            .map(|(deadline, _)| *deadline)
            .min()
    }

    /// Number of scheduled entries currently parked in the wheel.
    pub fn len(&self) -> usize {
        self.slots.iter().map(Vec::len).sum()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(wheel: &mut TimerWheel<&'static str>, now: u64) -> Vec<&'static str> {
        let mut due = Vec::new();
        wheel.advance(now, &mut due);
        due
    }

    #[test]
    fn tokens_fire_at_their_deadline_not_before() {
        let mut wheel = TimerWheel::new(64, 1);
        wheel.schedule(10, "a");
        wheel.schedule(25, "b");
        assert!(drain(&mut wheel, 9).is_empty());
        assert_eq!(drain(&mut wheel, 10), vec!["a"]);
        assert!(drain(&mut wheel, 24).is_empty());
        assert_eq!(drain(&mut wheel, 100), vec!["b"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn next_deadline_tracks_the_earliest_entry() {
        let mut wheel = TimerWheel::new(16, 1);
        assert_eq!(wheel.next_deadline_ms(), None);
        wheel.schedule(40, "late");
        wheel.schedule(12, "early");
        assert_eq!(wheel.next_deadline_ms(), Some(12));
        let mut due = Vec::new();
        wheel.advance(12, &mut due);
        assert_eq!(wheel.next_deadline_ms(), Some(40));
    }

    #[test]
    fn past_deadlines_fire_on_the_next_sweep() {
        let mut wheel = TimerWheel::new(8, 5);
        let mut due = Vec::new();
        wheel.advance(1_000, &mut due);
        wheel.schedule(3, "late");
        wheel.advance(1_001, &mut due);
        assert_eq!(due, vec!["late"]);
    }

    #[test]
    fn deadlines_beyond_one_lap_wait_their_lap() {
        // 8 slots × 1 ms = 8 ms lap; a deadline 20 ms out shares a slot with
        // earlier ticks but must not fire until 20 ms.
        let mut wheel = TimerWheel::new(8, 1);
        wheel.schedule(20, "far");
        for now in 0..20 {
            assert!(drain(&mut wheel, now).is_empty(), "fired early at {now}");
        }
        assert_eq!(drain(&mut wheel, 20), vec!["far"]);
    }

    #[test]
    fn a_large_jump_fires_everything_due() {
        let mut wheel = TimerWheel::new(16, 2);
        for at in [1u64, 7, 13, 64, 65, 900] {
            wheel.schedule(at, "t");
        }
        let mut due = Vec::new();
        wheel.advance(1_000, &mut due);
        assert_eq!(due.len(), 6);
        assert!(wheel.is_empty());
    }
}
