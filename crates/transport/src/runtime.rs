//! The threaded node runtime: a real UDP socket driving one [`StableNode`].
//!
//! Two threads run the protocol loop the engine documentation describes:
//!
//! * the **socket thread** receives datagrams, answers incoming
//!   [`ProbeRequest`](nc_proto::ProbeRequest)s from the engine, and stamps
//!   incoming responses with the measured round trip (the [`Instant`] the
//!   probe left, kept per outstanding probe) before handing them to
//!   [`StableNode::handle_response_into`];
//! * the **tick thread** walks a [`TimerWheel`] that fires the recurring
//!   deadlines — send the next round-robin probe, sweep the pending table
//!   through [`StableNode::expire_pending_into`], print a stats line.
//!
//! The engine itself lives behind one mutex; both threads take it briefly
//! per datagram/tick, which at probing rates (tens of probes per second per
//! node) is nowhere near contention.
//!
//! Shutdown is graceful: [`NodeRuntime::shutdown`] parks both threads,
//! persists the engine's [`NodeSnapshot`] when a snapshot path is
//! configured, and returns the snapshot. Starting a runtime with the same
//! path restores the node — coordinate, filter windows, membership, probe
//! schedule — and the node rejoins the overlay where it left off.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use nc_proto::{BinaryMessage, Event, NodeSnapshot, Packet};
use nc_query::{CoordinateIndex, QueryConfig, QueryHandle, QueryPublisher};
use nc_vivaldi::Coordinate;
use stable_nc::{NodeConfig, StableNode};

use crate::clock::MonoClock;
use crate::persist::{load_snapshot, save_snapshot};
use crate::wheel::TimerWheel;

/// How a [`NodeRuntime`] drives its engine.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The engine configuration (filter, heuristic, Vivaldi constants).
    pub node: NodeConfig,
    /// Peers probed from the start (the overlay's bootstrap addresses).
    pub seeds: Vec<SocketAddr>,
    /// The address this node advertises as its identity — the address peers
    /// can reach it at. Defaults to the socket's local address; must be
    /// overridden when the node is reachable through a proxy or NAT (the
    /// loopback harness does exactly this).
    pub advertised_addr: Option<SocketAddr>,
    /// Milliseconds between outgoing probes (one peer per probe,
    /// round-robin).
    pub probe_interval_ms: u64,
    /// Milliseconds after which an unanswered probe is declared lost.
    pub probe_timeout_ms: u64,
    /// Milliseconds between stats lines on stdout; `0` disables them.
    pub stats_interval_ms: u64,
    /// When set, the engine snapshot is loaded from this file at start (if
    /// it exists) and written back on shutdown.
    pub snapshot_path: Option<PathBuf>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            node: NodeConfig::paper_defaults(),
            seeds: Vec::new(),
            advertised_addr: None,
            probe_interval_ms: 500,
            probe_timeout_ms: 2_000,
            stats_interval_ms: 0,
            snapshot_path: None,
        }
    }
}

/// Counters the runtime maintains; every field is cumulative since start.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Probes sent.
    pub probes_sent: u64,
    /// Probe responses received (correlated or not).
    pub responses_received: u64,
    /// Responses the engine dropped as uncorrelated — late arrivals after
    /// their timeout, duplicated datagrams, unsolicited replies.
    pub responses_ignored: u64,
    /// Incoming probes answered.
    pub requests_answered: u64,
    /// Probes that expired without a reply.
    pub probes_lost: u64,
    /// Peers evicted after consecutive losses.
    pub neighbors_evicted: u64,
    /// Datagrams that failed to decode.
    pub malformed_datagrams: u64,
}

#[derive(Default)]
struct AtomicStats {
    probes_sent: AtomicU64,
    responses_received: AtomicU64,
    responses_ignored: AtomicU64,
    requests_answered: AtomicU64,
    probes_lost: AtomicU64,
    neighbors_evicted: AtomicU64,
    malformed_datagrams: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            probes_sent: self.probes_sent.load(Ordering::Relaxed),
            responses_received: self.responses_received.load(Ordering::Relaxed),
            responses_ignored: self.responses_ignored.load(Ordering::Relaxed),
            requests_answered: self.requests_answered.load(Ordering::Relaxed),
            probes_lost: self.probes_lost.load(Ordering::Relaxed),
            neighbors_evicted: self.neighbors_evicted.load(Ordering::Relaxed),
            malformed_datagrams: self.malformed_datagrams.load(Ordering::Relaxed),
        }
    }
}

/// The engine plus the per-probe departure instants used for RTT stamping.
struct EngineCore {
    node: StableNode<SocketAddr>,
    /// `(peer, seq)` → the instant the probe left. Entries are removed when
    /// the reply arrives or the probe expires; an entry with no match left
    /// means the reply will be uncorrelated anyway.
    departures: HashMap<(SocketAddr, u64), Instant>,
}

struct Shared {
    engine: Mutex<EngineCore>,
    stats: AtomicStats,
    shutdown: AtomicBool,
    clock: MonoClock,
    config: RuntimeConfig,
    local_addr: SocketAddr,
    advertised: SocketAddr,
    /// Publisher side of the coordinate query snapshots: rebuilt from the
    /// engine's [`stable_nc::NodeView`] whenever the application coordinate
    /// moves (and on the expire tick, so peer refreshes flow too), consumed
    /// lock-free through [`NodeRuntime::query_handle`].
    query: QueryPublisher<SocketAddr>,
}

/// A running UDP coordinate node. See the [module docs](self).
pub struct NodeRuntime {
    shared: Arc<Shared>,
    socket: UdpSocket,
    threads: Vec<JoinHandle<()>>,
}

impl NodeRuntime {
    /// Binds a fresh socket on `bind` and starts the runtime on it.
    pub fn bind(bind: SocketAddr, config: RuntimeConfig) -> io::Result<Self> {
        Self::start(UdpSocket::bind(bind)?, config)
    }

    /// Starts the runtime on an already-bound socket.
    ///
    /// When `config.snapshot_path` names an existing file, the engine is
    /// restored from it: the node keeps its coordinate and membership, and
    /// the probes that were in flight at snapshot time are expired as lost
    /// (their replies, if they ever arrive, are ignored as uncorrelated).
    pub fn start(socket: UdpSocket, config: RuntimeConfig) -> io::Result<Self> {
        let local_addr = socket.local_addr()?;
        let advertised = config.advertised_addr.unwrap_or(local_addr);

        let mut node = match &config.snapshot_path {
            Some(path) if path.exists() => {
                let snapshot = load_snapshot(path)?;
                StableNode::restore(config.node.clone(), &snapshot)
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
            }
            _ => StableNode::new(config.node.clone()),
        };
        node.set_identity(advertised);
        // A socket is untrusted input: even before this node's first probe
        // (a seedless rendezvous node may listen indefinitely), a forged
        // response must be rejected, not digested.
        node.require_correlated_responses();
        // In-flight probes from a previous life can never be answered on
        // this one's clock; expire them before the first tick.
        let mut stale = Vec::new();
        node.expire_pending_into(u64::MAX, 0, &mut stale);
        for seed in &config.seeds {
            if *seed != advertised {
                node.seed_neighbor(*seed);
            }
        }

        let query = QueryPublisher::new(
            empty_query_index(&config)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?,
        );
        let shared = Arc::new(Shared {
            engine: Mutex::new(EngineCore {
                node,
                departures: HashMap::new(),
            }),
            stats: AtomicStats::default(),
            shutdown: AtomicBool::new(false),
            clock: MonoClock::new(),
            config,
            local_addr,
            advertised,
            query,
        });
        // A restored node already owns a coordinate; make it queryable
        // before the first exchange.
        publish_query_snapshot(&shared);

        let mut threads = Vec::new();
        {
            let shared = Arc::clone(&shared);
            let socket = socket.try_clone()?;
            socket.set_read_timeout(Some(Duration::from_millis(20)))?;
            threads.push(
                std::thread::Builder::new()
                    .name("nc-socket".into())
                    .spawn(move || socket_loop(&shared, &socket))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            let socket = socket.try_clone()?;
            threads.push(
                std::thread::Builder::new()
                    .name("nc-tick".into())
                    .spawn(move || tick_loop(&shared, &socket))?,
            );
        }

        Ok(NodeRuntime {
            shared,
            socket,
            threads,
        })
    }

    /// The socket's actual local address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The identity this node advertises to peers.
    pub fn advertised_addr(&self) -> SocketAddr {
        self.shared.advertised
    }

    /// A snapshot of the runtime counters.
    pub fn stats(&self) -> RuntimeStats {
        self.shared.stats.snapshot()
    }

    /// The engine's current system-level coordinate and error estimate.
    pub fn coordinate(&self) -> (Coordinate, f64) {
        let engine = self.shared.engine.lock().expect("engine lock");
        (
            engine.node.system_coordinate().clone(),
            engine.node.error_estimate(),
        )
    }

    /// Number of peers currently in the probe schedule.
    pub fn membership_len(&self) -> usize {
        self.view().membership.len()
    }

    /// A read-only snapshot of the engine's externally observable state.
    pub fn view(&self) -> stable_nc::NodeView<SocketAddr> {
        let engine = self.shared.engine.lock().expect("engine lock");
        engine.node.view()
    }

    /// One human-readable status line (what the stats tick prints).
    pub fn stats_line(&self) -> String {
        runtime_stats_line(&self.shared)
    }

    /// A cheap, cloneable handle onto this node's coordinate query
    /// snapshots. Each [`QueryHandle::snapshot`] call returns an immutable
    /// [`CoordinateIndex`] over the node's own application coordinate and
    /// every peer coordinate it has heard, refreshed by the runtime's
    /// threads — answering k-nearest or closest-replica queries from it
    /// never takes the engine lock.
    pub fn query_handle(&self) -> QueryHandle<SocketAddr> {
        self.shared.query.handle()
    }

    /// Stops both threads, persists the snapshot when configured, and
    /// returns the engine's final state.
    pub fn shutdown(mut self) -> io::Result<NodeSnapshot<SocketAddr>> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        let snapshot = {
            let engine = self.shared.engine.lock().expect("engine lock");
            engine.node.snapshot()
        };
        if let Some(path) = &self.shared.config.snapshot_path {
            save_snapshot(path, &snapshot)?;
        }
        drop(self.socket);
        Ok(snapshot)
    }
}

/// Builds an empty query index sized to the runtime's coordinate space.
fn empty_query_index(
    config: &RuntimeConfig,
) -> Result<CoordinateIndex<SocketAddr>, nc_query::QueryError> {
    CoordinateIndex::new(QueryConfig {
        dimensions: config.node.vivaldi.dimensions(),
        ..QueryConfig::default()
    })
}

/// Rebuilds the published query snapshot from the engine's current view.
/// Rebuilding (rather than mutating a shared index) keeps reader snapshots
/// immutable; the population is one node's membership, so the cost is
/// trivial next to a datagram digest.
fn publish_query_snapshot(shared: &Shared) {
    let view = {
        let engine = shared.engine.lock().expect("engine lock");
        engine.node.view()
    };
    let Ok(mut index) = empty_query_index(&shared.config) else {
        return;
    };
    // The engine's view only holds validated coordinates of its own
    // dimensionality, so absorbing it cannot fail.
    let _ = index.absorb_view(Some(&shared.advertised), &view);
    shared.query.publish(index);
}

fn socket_loop(shared: &Shared, socket: &UdpSocket) {
    let mut buffer = [0u8; 64 * 1024];
    let mut events: Vec<Event<SocketAddr>> = Vec::new();
    while !shared.shutdown.load(Ordering::Relaxed) {
        let (length, source) = match socket.recv_from(&mut buffer) {
            Ok(received) => received,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        match Packet::decode(&buffer[..length]) {
            Ok(Packet::Request(request)) => {
                let bytes = {
                    let mut engine = shared.engine.lock().expect("engine lock");
                    engine.node.respond(&request).encode_binary()
                };
                let _ = socket.send_to(&bytes, source);
                shared
                    .stats
                    .requests_answered
                    .fetch_add(1, Ordering::Relaxed);
            }
            Ok(Packet::Response(mut response)) => {
                let received_at = Instant::now();
                shared
                    .stats
                    .responses_received
                    .fetch_add(1, Ordering::Relaxed);
                let mut engine = shared.engine.lock().expect("engine lock");
                // Stamp the measured round trip from the probe's recorded
                // departure. A response with no departure entry (late after
                // its timeout, or a duplicate) gets a nominal stamp and is
                // rejected by the engine's correlation check anyway.
                let rtt_ms = match engine
                    .departures
                    .remove(&(response.responder, response.seq))
                {
                    Some(departure) => received_at.duration_since(departure).as_secs_f64() * 1e3,
                    None => shared.clock.now_ms().saturating_sub(response.sent_at_ms) as f64,
                };
                response.rtt_ms = rtt_ms.max(0.01);
                events.clear();
                engine.node.handle_response_into(&response, &mut events);
                drop(engine);
                // A published application coordinate is the one event class
                // query snapshots must not lag behind.
                if events
                    .iter()
                    .any(|event| matches!(event, Event::ApplicationUpdated { .. }))
                {
                    publish_query_snapshot(shared);
                }
                for event in &events {
                    match event {
                        Event::ResponseIgnored { .. } => {
                            shared
                                .stats
                                .responses_ignored
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Event::NeighborEvicted { .. } => {
                            shared
                                .stats
                                .neighbors_evicted
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {}
                    }
                }
            }
            Err(_) => {
                shared
                    .stats
                    .malformed_datagrams
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// The recurring deadlines the tick thread serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tick {
    Probe,
    Expire,
    Stats,
}

fn tick_loop(shared: &Shared, socket: &UdpSocket) {
    let granularity_ms = 1;
    let mut wheel: TimerWheel<Tick> = TimerWheel::new(256, granularity_ms);
    let mut due: Vec<Tick> = Vec::new();
    let mut events: Vec<Event<SocketAddr>> = Vec::new();
    let expire_interval_ms = (shared.config.probe_timeout_ms / 4).max(granularity_ms);

    wheel.schedule(0, Tick::Probe);
    wheel.schedule(0, Tick::Expire);
    if shared.config.stats_interval_ms > 0 {
        wheel.schedule(shared.config.stats_interval_ms, Tick::Stats);
    }

    while !shared.shutdown.load(Ordering::Relaxed) {
        // Sleep until the next scheduled deadline instead of spinning at
        // wheel granularity: a daemon probing every 500 ms has no business
        // waking a thousand times a second. The 25 ms cap keeps shutdown
        // responsive.
        let sleep_ms = wheel
            .next_deadline_ms()
            .map(|deadline| deadline.saturating_sub(shared.clock.now_ms()))
            .unwrap_or(granularity_ms)
            .clamp(granularity_ms, 25);
        std::thread::sleep(Duration::from_millis(sleep_ms));
        let now_ms = shared.clock.now_ms();
        due.clear();
        wheel.advance(now_ms, &mut due);
        for tick in &due {
            match tick {
                Tick::Probe => {
                    let request = {
                        let mut engine = shared.engine.lock().expect("engine lock");
                        let request = engine.node.next_probe(now_ms);
                        if let Some(request) = &request {
                            engine
                                .departures
                                .insert((request.target, request.seq), Instant::now());
                        }
                        request
                    };
                    if let Some(request) = request {
                        let target = request.target;
                        let _ = socket.send_to(&request.encode_binary(), target);
                        shared.stats.probes_sent.fetch_add(1, Ordering::Relaxed);
                    }
                    wheel.schedule(now_ms + shared.config.probe_interval_ms, Tick::Probe);
                }
                Tick::Expire => {
                    events.clear();
                    {
                        let mut engine = shared.engine.lock().expect("engine lock");
                        let EngineCore { node, departures } = &mut *engine;
                        node.expire_pending_into(
                            now_ms,
                            shared.config.probe_timeout_ms,
                            &mut events,
                        );
                        for event in &events {
                            match event {
                                Event::ProbeLost { id, seq } => {
                                    departures.remove(&(*id, *seq));
                                }
                                // Eviction silently drops the peer's *other*
                                // in-flight probes from the pending table
                                // (no ProbeLost for them); purge their
                                // departure stamps too or a long-lived
                                // daemon leaks one entry per swallowed
                                // probe.
                                Event::NeighborEvicted { id } => {
                                    departures.retain(|(peer, _), _| peer != id);
                                }
                                _ => {}
                            }
                        }
                    }
                    for event in &events {
                        match event {
                            Event::ProbeLost { .. } => {
                                shared.stats.probes_lost.fetch_add(1, Ordering::Relaxed);
                            }
                            Event::NeighborEvicted { .. } => {
                                shared
                                    .stats
                                    .neighbors_evicted
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {}
                        }
                    }
                    // Peer coordinates refresh with every digested reply;
                    // republishing on the expire cadence keeps query
                    // snapshots current without an extra timer.
                    publish_query_snapshot(shared);
                    wheel.schedule(now_ms + expire_interval_ms, Tick::Expire);
                }
                Tick::Stats => {
                    println!("[{}] {}", shared.advertised, runtime_stats_line(shared));
                    wheel.schedule(now_ms + shared.config.stats_interval_ms, Tick::Stats);
                }
            }
        }
    }
}

/// Builds the status line from shared state (the tick thread has no
/// `NodeRuntime` handle).
fn runtime_stats_line(shared: &Shared) -> String {
    let view = {
        let engine = shared.engine.lock().expect("engine lock");
        engine.node.view()
    };
    let stats = shared.stats.snapshot();
    let elapsed = shared.clock.now_ms() as f64 / 1e3;
    let components: Vec<String> = view
        .system
        .components()
        .iter()
        .map(|c| format!("{c:.1}"))
        .collect();
    format!(
        "t={elapsed:.1}s coord=[{}] h={:.1} err={:.3} peers={} sent={} recv={} answered={} ignored={} lost={} evicted={}",
        components.join(","),
        view.system.height(),
        view.error_estimate,
        view.membership.len(),
        stats.probes_sent,
        stats.responses_received,
        stats.requests_answered,
        stats.responses_ignored,
        stats.probes_lost,
        stats.neighbors_evicted,
    )
}
