//! `nc-node` — one stable-coordinates node per process, on real UDP.
//!
//! ```text
//! nc-node --bind 127.0.0.1:0 \
//!         --seed 10.0.0.1:4500 --seed 10.0.0.2:4500 \
//!         --probe-interval-ms 500 --probe-timeout-ms 2000 \
//!         --stats-interval-s 5 --duration-s 0 \
//!         --snapshot node-a.snapshot
//! ```
//!
//! The node binds, joins the overlay through its seed addresses (gossip
//! grows the membership from there), probes round-robin, and prints a stats
//! line per interval. On exit — after `--duration-s`, or at end of input on
//! stdin (type `quit` or close the pipe) — it persists its snapshot when
//! `--snapshot` is given; starting again with the same snapshot path
//! resumes from it, keeping the node's coordinate and membership.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nc_transport::{NodeRuntime, RuntimeConfig};
use stable_nc::NodeConfig;

struct Args {
    bind: SocketAddr,
    seeds: Vec<SocketAddr>,
    probe_interval_ms: u64,
    probe_timeout_ms: u64,
    stats_interval_s: u64,
    duration_s: u64,
    snapshot: Option<PathBuf>,
    max_consecutive_losses: Option<u32>,
}

const USAGE: &str = "usage: nc-node --bind ADDR [options]
  --bind ADDR                 address to bind (e.g. 127.0.0.1:0)
  --seed ADDR                 bootstrap peer; repeatable
  --probe-interval-ms N       milliseconds between probes (default 500)
  --probe-timeout-ms N        probe timeout in milliseconds (default 2000)
  --stats-interval-s N        seconds between stats lines, 0 = off (default 5)
  --duration-s N              run time in seconds, 0 = until stdin closes (default 0)
  --snapshot PATH             restore from and persist the engine snapshot here
  --max-consecutive-losses N  evict peers after N straight losses (default: never)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        bind: "127.0.0.1:0".parse().expect("valid default"),
        seeds: Vec::new(),
        probe_interval_ms: 500,
        probe_timeout_ms: 2_000,
        stats_interval_s: 5,
        duration_s: 0,
        snapshot: None,
        max_consecutive_losses: None,
    };
    let mut bind_seen = false;
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        if flag == "--help" || flag == "-h" {
            return Err(String::new());
        }
        let mut value = || raw.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--bind" => {
                args.bind = value()?.parse().map_err(|e| format!("--bind: {e}"))?;
                bind_seen = true;
            }
            "--seed" => args
                .seeds
                .push(value()?.parse().map_err(|e| format!("--seed: {e}"))?),
            "--probe-interval-ms" => {
                args.probe_interval_ms = value()?
                    .parse()
                    .map_err(|e| format!("--probe-interval-ms: {e}"))?
            }
            "--probe-timeout-ms" => {
                args.probe_timeout_ms = value()?
                    .parse()
                    .map_err(|e| format!("--probe-timeout-ms: {e}"))?
            }
            "--stats-interval-s" => {
                args.stats_interval_s = value()?
                    .parse()
                    .map_err(|e| format!("--stats-interval-s: {e}"))?
            }
            "--duration-s" => {
                args.duration_s = value()?.parse().map_err(|e| format!("--duration-s: {e}"))?
            }
            "--snapshot" => args.snapshot = Some(PathBuf::from(value()?)),
            "--max-consecutive-losses" => {
                args.max_consecutive_losses = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--max-consecutive-losses: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !bind_seen {
        return Err("--bind is required".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("nc-node: {message}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut node_config = NodeConfig::builder();
    if let Some(losses) = args.max_consecutive_losses {
        node_config = node_config.max_consecutive_losses(losses);
    }
    let config = RuntimeConfig {
        node: node_config.build(),
        seeds: args.seeds.clone(),
        advertised_addr: None,
        probe_interval_ms: args.probe_interval_ms,
        probe_timeout_ms: args.probe_timeout_ms,
        stats_interval_ms: args.stats_interval_s * 1_000,
        snapshot_path: args.snapshot.clone(),
    };
    let restoring = args.snapshot.as_deref().is_some_and(|path| path.exists());

    let runtime = match NodeRuntime::bind(args.bind, config) {
        Ok(runtime) => runtime,
        Err(e) => {
            eprintln!("nc-node: failed to start on {}: {e}", args.bind);
            return ExitCode::FAILURE;
        }
    };
    println!("nc-node listening on {}", runtime.local_addr());
    if restoring {
        let (coordinate, _) = runtime.coordinate();
        println!(
            "nc-node restored snapshot: coord=[{}]",
            coordinate
                .components()
                .iter()
                .map(|c| format!("{c:.1}"))
                .collect::<Vec<_>>()
                .join(",")
        );
    }

    // Exit either after --duration-s or when stdin reaches EOF / "quit"
    // (whichever a supervisor finds easier to drive).
    let stdin_done = Arc::new(AtomicBool::new(false));
    if args.duration_s == 0 {
        let stdin_done = Arc::clone(&stdin_done);
        std::thread::spawn(move || {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(text) if text.trim() == "quit" => break,
                    Ok(_) => continue,
                    Err(_) => break,
                }
            }
            stdin_done.store(true, Ordering::SeqCst);
        });
    }

    let started = Instant::now();
    loop {
        std::thread::sleep(Duration::from_millis(50));
        if args.duration_s > 0 {
            if started.elapsed() >= Duration::from_secs(args.duration_s) {
                break;
            }
        } else if stdin_done.load(Ordering::SeqCst) {
            break;
        }
    }

    println!("nc-node final: {}", runtime.stats_line());
    match runtime.shutdown() {
        Ok(snapshot) => {
            if args.snapshot.is_some() {
                println!(
                    "nc-node snapshot persisted ({} neighbors, {} observations)",
                    snapshot.neighbor_count(),
                    snapshot.observations
                );
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("nc-node: shutdown failed: {e}");
            ExitCode::FAILURE
        }
    }
}
