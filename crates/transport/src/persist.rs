//! Snapshot persistence: binary `NodeSnapshot` files with atomic replace.
//!
//! A node runtime persists its engine state on graceful shutdown and
//! restores it on the next start, so a restarted node rejoins the overlay
//! with its coordinate, filter windows and probe schedule intact instead of
//! re-converging from the origin. Files carry the framed binary form of
//! [`NodeSnapshot`] (see `nc_proto::binary`), so they are protocol-version
//! checked on load like every other message.

use std::io;
use std::net::SocketAddr;
use std::path::Path;

use nc_proto::{BinaryMessage, NodeSnapshot};

/// Writes `snapshot` to `path` atomically: the bytes land in a sibling
/// `.tmp` file first and replace the destination with a rename, so a crash
/// mid-write never leaves a truncated snapshot behind.
pub fn save_snapshot(path: &Path, snapshot: &NodeSnapshot<SocketAddr>) -> io::Result<()> {
    let bytes = snapshot.encode_binary();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)
}

/// Loads a snapshot previously written by [`save_snapshot`].
///
/// # Errors
///
/// I/O errors pass through; a malformed or version-mismatched file surfaces
/// as [`io::ErrorKind::InvalidData`].
pub fn load_snapshot(path: &Path) -> io::Result<NodeSnapshot<SocketAddr>> {
    let bytes = std::fs::read(path)?;
    NodeSnapshot::decode_binary(&bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stable_nc::{NodeConfig, StableNode};

    #[test]
    fn snapshots_survive_the_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("nc-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("node.snapshot");

        let mut node: StableNode<SocketAddr> = StableNode::new(NodeConfig::paper_defaults());
        let peer: SocketAddr = "127.0.0.1:4000".parse().unwrap();
        node.set_identity("127.0.0.1:3999".parse().unwrap());
        let remote = nc_vivaldi::Coordinate::new(vec![10.0, 20.0, 0.0]).unwrap();
        for step in 0..32u64 {
            let request = node.probe_request_for(peer, step);
            let mut response = nc_proto::ProbeResponse::new(peer, &request, remote.clone(), 0.5);
            response.rtt_ms = 45.0 + (step % 3) as f64;
            node.handle_response(&response);
        }

        let snapshot = node.snapshot();
        save_snapshot(&path, &snapshot).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded, snapshot);

        let restored = StableNode::restore(NodeConfig::paper_defaults(), &loaded).unwrap();
        assert_eq!(restored.system_coordinate(), node.system_coordinate());

        // A truncated file is InvalidData, not a panic.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        let err = load_snapshot(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).ok();
    }
}
