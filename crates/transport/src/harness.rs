//! A delay-injecting loopback harness: real UDP sockets, emulated network.
//!
//! Loopback delivers datagrams in microseconds, loses nothing and never
//! reorders — none of which is true of the networks the paper deployed on.
//! The harness puts an emulated network between real node runtimes without
//! touching their code: every node is known to its peers by a **public
//! address** owned by the harness, and the harness relays each datagram to
//! the node's real socket after holding it for the link's one-way delay,
//! dropping it with the link's loss probability, or delivering it twice.
//! Jitter makes closely spaced datagrams overtake each other, so
//! reordering falls out for free.
//!
//! The address plumbing is the whole trick. For nodes `A` and `B` with real
//! sockets `Ra`/`Rb` and public sockets `Pa`/`Pb`:
//!
//! 1. `A` (advertising `Pa`, seeded with `Pb`) sends a probe from `Ra` to
//!    `Pb`;
//! 2. the harness receives it on `Pb` from `Ra`, holds it for the `A → B`
//!    one-way delay, then forwards it to `Rb` **from `Pa`** — so `B` sees a
//!    probe from `Pa`;
//! 3. `B` replies from `Rb` to `Pa`; the harness receives it on `Pa`,
//!    holds it for `B → A`, and forwards it to `Ra` from `Pb`.
//!
//! Every address any node ever sees is a public address, which is also what
//! each node advertises as its identity — so gossip spreads reachable
//! addresses and the engines' correlation logic works unchanged. Restarting
//! a node behind the same public address is just
//! [`DelayHarness::update_real_addr`].

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The emulated behaviour of one *directed* link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Base one-way delay applied to every datagram (milliseconds).
    pub one_way_delay_ms: f64,
    /// Uniform extra delay in `[0, jitter_ms)` drawn per datagram. Jitter
    /// larger than the spacing between datagrams reorders them.
    pub jitter_ms: f64,
    /// Probability a datagram is dropped outright.
    pub loss_probability: f64,
    /// Probability a datagram is delivered twice (the copy draws its own
    /// delay and jitter).
    pub duplicate_probability: f64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            one_way_delay_ms: 1.0,
            jitter_ms: 0.0,
            loss_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

impl LinkSpec {
    /// A symmetric link whose round trip is `rtt_ms` (half each way).
    pub fn from_rtt(rtt_ms: f64) -> Self {
        LinkSpec {
            one_way_delay_ms: rtt_ms / 2.0,
            ..LinkSpec::default()
        }
    }

    /// Sets the per-datagram jitter bound.
    pub fn with_jitter(mut self, jitter_ms: f64) -> Self {
        self.jitter_ms = jitter_ms;
        self
    }

    /// Sets the loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability in [0, 1]");
        self.loss_probability = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability in [0, 1]"
        );
        self.duplicate_probability = p;
        self
    }
}

/// Builds a [`DelayHarness`]. See [`DelayHarness::builder`].
pub struct HarnessBuilder {
    node_count: usize,
    default_link: LinkSpec,
    links: HashMap<(usize, usize), LinkSpec>,
    seed: u64,
}

impl HarnessBuilder {
    /// Sets the link used for every pair without an explicit spec.
    pub fn default_link(mut self, spec: LinkSpec) -> Self {
        self.default_link = spec;
        self
    }

    /// Sets both directions of the `a ↔ b` link.
    pub fn link(mut self, a: usize, b: usize, spec: LinkSpec) -> Self {
        self.links.insert((a, b), spec);
        self.links.insert((b, a), spec);
        self
    }

    /// Sets only the `from → to` direction.
    pub fn link_directed(mut self, from: usize, to: usize, spec: LinkSpec) -> Self {
        self.links.insert((from, to), spec);
        self
    }

    /// Seeds the harness's loss/jitter/duplication draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Binds one public socket per node on `127.0.0.1` and starts the relay
    /// threads. `real_addrs[i]` is node `i`'s real socket address (bind the
    /// node sockets first, start the runtimes after — the harness only
    /// needs the addresses).
    pub fn start(self, real_addrs: &[SocketAddr]) -> io::Result<DelayHarness> {
        assert_eq!(
            real_addrs.len(),
            self.node_count,
            "one real address per node"
        );
        let mut publics = Vec::with_capacity(self.node_count);
        for _ in 0..self.node_count {
            let socket = UdpSocket::bind("127.0.0.1:0")?;
            socket.set_read_timeout(Some(Duration::from_millis(20)))?;
            publics.push(socket);
        }
        let public_addrs: Vec<SocketAddr> = publics
            .iter()
            .map(|socket| socket.local_addr())
            .collect::<io::Result<_>>()?;

        let mut real_to_index = HashMap::new();
        for (index, addr) in real_addrs.iter().enumerate() {
            real_to_index.insert(*addr, index);
        }

        let shared = Arc::new(HarnessShared {
            queue: Mutex::new(BinaryHeap::new()),
            wakeup: Condvar::new(),
            routing: Mutex::new(Routing {
                real_addrs: real_addrs.to_vec(),
                real_to_index,
            }),
            rng: Mutex::new(StdRng::seed_from_u64(self.seed)),
            links: self.links,
            default_link: self.default_link,
            shutdown: AtomicBool::new(false),
            next_delivery: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
        });

        let mut threads = Vec::new();
        for (index, socket) in publics.iter().enumerate() {
            let shared = Arc::clone(&shared);
            let socket = socket.try_clone()?;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("harness-recv-{index}"))
                    .spawn(move || receive_loop(&shared, &socket, index))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            let senders: Vec<UdpSocket> = publics
                .iter()
                .map(|socket| socket.try_clone())
                .collect::<io::Result<_>>()?;
            threads.push(
                std::thread::Builder::new()
                    .name("harness-dispatch".into())
                    .spawn(move || dispatch_loop(&shared, &senders))?,
            );
        }

        Ok(DelayHarness {
            shared,
            public_addrs,
            threads,
        })
    }
}

/// One datagram held by the harness until its delivery instant.
struct Delivery {
    due: Instant,
    /// FIFO tie-break so equal instants keep arrival order.
    sequence: u64,
    /// Node whose *public* socket the datagram leaves from.
    via: usize,
    /// The destination's real socket.
    to: SocketAddr,
    payload: Vec<u8>,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.sequence == other.sequence
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.sequence).cmp(&(other.due, other.sequence))
    }
}

struct Routing {
    real_addrs: Vec<SocketAddr>,
    real_to_index: HashMap<SocketAddr, usize>,
}

struct HarnessShared {
    queue: Mutex<BinaryHeap<Reverse<Delivery>>>,
    wakeup: Condvar,
    routing: Mutex<Routing>,
    rng: Mutex<StdRng>,
    links: HashMap<(usize, usize), LinkSpec>,
    default_link: LinkSpec,
    shutdown: AtomicBool,
    next_delivery: AtomicU64,
    forwarded: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
}

impl HarnessShared {
    fn link(&self, from: usize, to: usize) -> LinkSpec {
        self.links
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }
}

/// The running emulated network. Dropping it stops the relay threads.
pub struct DelayHarness {
    shared: Arc<HarnessShared>,
    public_addrs: Vec<SocketAddr>,
    threads: Vec<JoinHandle<()>>,
}

impl DelayHarness {
    /// Starts building a harness for `node_count` nodes.
    pub fn builder(node_count: usize) -> HarnessBuilder {
        HarnessBuilder {
            node_count,
            default_link: LinkSpec::default(),
            links: HashMap::new(),
            seed: 0,
        }
    }

    /// Node `i`'s public address — what peers (and `i` itself, as its
    /// advertised identity) should use.
    pub fn public_addr(&self, index: usize) -> SocketAddr {
        self.public_addrs[index]
    }

    /// The emulated round trip between two nodes: both directed one-way
    /// delays, jitter excluded.
    pub fn emulated_rtt_ms(&self, a: usize, b: usize) -> f64 {
        self.shared.link(a, b).one_way_delay_ms + self.shared.link(b, a).one_way_delay_ms
    }

    /// Points node `index`'s public address at a new real socket — how a
    /// restarted node (fresh socket, same identity) rejoins the emulated
    /// network.
    pub fn update_real_addr(&self, index: usize, addr: SocketAddr) {
        let mut routing = self.shared.routing.lock().expect("routing lock");
        let old = routing.real_addrs[index];
        routing.real_to_index.remove(&old);
        routing.real_addrs[index] = addr;
        routing.real_to_index.insert(addr, index);
    }

    /// Datagrams forwarded (original deliveries plus duplicates).
    pub fn forwarded(&self) -> u64 {
        self.shared.forwarded.load(Ordering::Relaxed)
    }

    /// Datagrams dropped by the loss draw.
    pub fn dropped(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Datagrams the duplication draw scheduled twice.
    pub fn duplicated(&self) -> u64 {
        self.shared.duplicated.load(Ordering::Relaxed)
    }
}

impl Drop for DelayHarness {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wakeup.notify_all();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Receives on node `to`'s public socket and schedules deliveries.
fn receive_loop(shared: &HarnessShared, socket: &UdpSocket, to: usize) {
    let mut buffer = [0u8; 64 * 1024];
    while !shared.shutdown.load(Ordering::Relaxed) {
        let (length, source) = match socket.recv_from(&mut buffer) {
            Ok(received) => received,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => continue,
        };
        let (from, to_real) = {
            let routing = shared.routing.lock().expect("routing lock");
            match routing.real_to_index.get(&source) {
                // A datagram from an unknown real socket has no link to
                // emulate (a stale socket of a killed node, or a stray
                // process); drop it like a network with no route would.
                None => {
                    shared.dropped.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                Some(&from) => (from, routing.real_addrs[to]),
            }
        };
        let spec = shared.link(from, to);
        let (lost, delays) = {
            let mut rng = shared.rng.lock().expect("rng lock");
            let lost = spec.loss_probability > 0.0 && rng.gen_bool(spec.loss_probability);
            let mut delays = [0.0f64; 2];
            let mut count = 0;
            if !lost {
                delays[count] = draw_delay(&mut rng, &spec);
                count += 1;
                if spec.duplicate_probability > 0.0 && rng.gen_bool(spec.duplicate_probability) {
                    delays[count] = draw_delay(&mut rng, &spec);
                    count += 1;
                }
            }
            (lost, delays[..count].to_vec())
        };
        if lost {
            shared.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if delays.len() > 1 {
            shared.duplicated.fetch_add(1, Ordering::Relaxed);
        }
        let now = Instant::now();
        let mut queue = shared.queue.lock().expect("queue lock");
        for delay_ms in delays {
            let sequence = shared.next_delivery.fetch_add(1, Ordering::Relaxed);
            queue.push(Reverse(Delivery {
                due: now + Duration::from_secs_f64(delay_ms / 1e3),
                sequence,
                via: from,
                to: to_real,
                payload: buffer[..length].to_vec(),
            }));
        }
        drop(queue);
        shared.wakeup.notify_all();
    }
}

fn draw_delay(rng: &mut StdRng, spec: &LinkSpec) -> f64 {
    let jitter = if spec.jitter_ms > 0.0 {
        rng.gen_range(0.0..spec.jitter_ms)
    } else {
        0.0
    };
    spec.one_way_delay_ms + jitter
}

/// Pops due deliveries and sends each from the right public socket.
fn dispatch_loop(shared: &HarnessShared, senders: &[UdpSocket]) {
    let mut queue = shared.queue.lock().expect("queue lock");
    while !shared.shutdown.load(Ordering::Relaxed) {
        let now = Instant::now();
        match queue.peek() {
            Some(Reverse(next)) if next.due <= now => {
                let Reverse(delivery) = queue.pop().expect("peeked entry");
                drop(queue);
                let _ = senders[delivery.via].send_to(&delivery.payload, delivery.to);
                shared.forwarded.fetch_add(1, Ordering::Relaxed);
                queue = shared.queue.lock().expect("queue lock");
            }
            Some(Reverse(next)) => {
                let wait = next.due.duration_since(now).min(Duration::from_millis(20));
                let (returned, _) = shared
                    .wakeup
                    .wait_timeout(queue, wait)
                    .expect("queue lock poisoned");
                queue = returned;
            }
            None => {
                let (returned, _) = shared
                    .wakeup
                    .wait_timeout(queue, Duration::from_millis(20))
                    .expect("queue lock poisoned");
                queue = returned;
            }
        }
    }
}
