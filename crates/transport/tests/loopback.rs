//! End-to-end integration over real UDP sockets behind the delay harness.
//!
//! This is the acceptance run for the transport layer: eight real node
//! runtimes exchange thousands of probes across an emulated two-cluster
//! topology with jitter, 5% loss and duplicated datagrams, converge to the
//! topology's round trips, and one node is killed and restarted from its
//! persisted snapshot without resetting its coordinate. The smaller tests
//! surface the two uncorrelated-reply regressions through the transport —
//! replies arriving after their probe timed out, and duplicate deliveries.

use std::net::{SocketAddr, UdpSocket};
use std::path::PathBuf;
use std::time::Duration;

use nc_transport::{DelayHarness, LinkSpec, NodeRuntime, RuntimeConfig};
use nc_vivaldi::Coordinate;
use stable_nc::NodeConfig;

fn bind_real_sockets(count: usize) -> (Vec<UdpSocket>, Vec<SocketAddr>) {
    let sockets: Vec<UdpSocket> = (0..count)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind real socket"))
        .collect();
    let addrs = sockets
        .iter()
        .map(|socket| socket.local_addr().expect("local addr"))
        .collect();
    (sockets, addrs)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nc-loopback-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Eight nodes placed on a plane, two clusters 70 ms apart; the emulated
/// RTT of a pair is the euclidean distance between their points.
const POSITIONS: [(f64, f64); 8] = [
    (0.0, 0.0),
    (9.0, 0.0),
    (0.0, 9.0),
    (9.0, 9.0),
    (70.0, 0.0),
    (79.0, 0.0),
    (70.0, 9.0),
    (79.0, 9.0),
];

fn planar_rtt(a: usize, b: usize) -> f64 {
    let (ax, ay) = POSITIONS[a];
    let (bx, by) = POSITIONS[b];
    ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values[values.len() / 2]
}

#[test]
fn eight_node_cluster_converges_under_loss_and_duplication_and_survives_restart() {
    const NODES: usize = 8;
    let dir = temp_dir("cluster");
    let (sockets, real_addrs) = bind_real_sockets(NODES);

    // The emulated network: planar RTTs, 1 ms of jitter (enough to reorder
    // back-to-back datagrams), 5% loss and 5% duplication on every link.
    let mut builder = DelayHarness::builder(NODES).seed(42);
    for a in 0..NODES {
        for b in (a + 1)..NODES {
            builder = builder.link(
                a,
                b,
                LinkSpec::from_rtt(planar_rtt(a, b))
                    .with_jitter(1.0)
                    .with_loss(0.05)
                    .with_duplication(0.05),
            );
        }
    }
    let harness = builder.start(&real_addrs).expect("start harness");

    let config_for = |index: usize| RuntimeConfig {
        node: NodeConfig::paper_defaults(),
        seeds: (0..NODES)
            .filter(|&peer| peer != index)
            .map(|peer| harness.public_addr(peer))
            .collect(),
        advertised_addr: Some(harness.public_addr(index)),
        probe_interval_ms: 4,
        probe_timeout_ms: 500,
        stats_interval_ms: 0,
        snapshot_path: Some(dir.join(format!("node-{index}.snapshot"))),
    };

    let mut runtimes: Vec<NodeRuntime> = sockets
        .into_iter()
        .enumerate()
        .map(|(index, socket)| {
            NodeRuntime::start(socket, config_for(index)).expect("start runtime")
        })
        .collect();

    // Converge: ~1500 probes per node at 4 ms.
    std::thread::sleep(Duration::from_secs(6));

    let total_probes: u64 = runtimes.iter().map(|r| r.stats().probes_sent).sum();
    assert!(
        total_probes >= 1_000,
        "the cluster must exchange at least 1,000 probes, got {total_probes}"
    );
    assert!(
        harness.dropped() > 0,
        "5% loss must actually drop datagrams"
    );
    assert!(
        harness.duplicated() > 0,
        "5% duplication must actually duplicate datagrams"
    );
    let total_ignored: u64 = runtimes.iter().map(|r| r.stats().responses_ignored).sum();
    assert!(
        total_ignored > 0,
        "duplicated replies must surface as Event::ResponseIgnored"
    );

    let coordinates: Vec<Coordinate> = runtimes
        .iter()
        .map(|runtime| runtime.coordinate().0)
        .collect();
    let mut errors = Vec::new();
    for a in 0..NODES {
        for b in (a + 1)..NODES {
            let actual = harness.emulated_rtt_ms(a, b);
            let estimated = coordinates[a].distance(&coordinates[b]);
            errors.push((estimated - actual).abs() / actual);
        }
    }
    let median_error = median(errors.clone());
    assert!(
        median_error < 0.15,
        "median relative error {median_error:.3} over {} pairs (errors: {errors:.3?})",
        errors.len()
    );

    // Kill node 0 gracefully: its snapshot lands on disk.
    let node0 = runtimes.remove(0);
    let pre_restart_stats = node0.stats();
    assert!(pre_restart_stats.responses_received > 0);
    let snapshot = node0.shutdown().expect("shutdown node 0");
    let parked = snapshot.system_coordinate().clone();
    assert!(
        parked.magnitude() > 1.0,
        "node 0 had converged away from the origin: {parked:?}"
    );

    // Restart it on a fresh real socket behind the same public address.
    let new_socket = UdpSocket::bind("127.0.0.1:0").expect("rebind node 0");
    harness.update_real_addr(0, new_socket.local_addr().expect("local addr"));
    let node0 = NodeRuntime::start(new_socket, config_for(0)).expect("restart node 0");

    // The restored coordinate is the snapshot's, not the origin: probing has
    // only had a few milliseconds to nudge it.
    let (restored, _) = node0.coordinate();
    assert!(
        restored.distance(&parked) < 5.0,
        "restart must resume from the snapshot ({:.1} ms away)",
        restored.distance(&parked)
    );

    // And it rejoins: fresh probes flow both ways, and the node stays at its
    // converged position instead of re-converging from scratch.
    std::thread::sleep(Duration::from_millis(1_500));
    let stats = node0.stats();
    assert!(stats.probes_sent > 0, "restarted node probes");
    assert!(stats.responses_received > 0, "restarted node hears replies");
    let (settled, _) = node0.coordinate();
    let mut node0_errors = Vec::new();
    for (peer, runtime) in runtimes.iter().enumerate() {
        let actual = harness.emulated_rtt_ms(0, peer + 1);
        let estimated = settled.distance(&runtime.coordinate().0);
        node0_errors.push((estimated - actual).abs() / actual);
    }
    let node0_median = median(node0_errors);
    assert!(
        node0_median < 0.20,
        "restarted node stays converged (median error {node0_median:.3})"
    );

    node0.shutdown().expect("final shutdown node 0");
    for runtime in runtimes {
        runtime.shutdown().expect("shutdown");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn replies_after_the_probe_timeout_are_ignored_not_double_applied() {
    // The link's one-way delay exceeds the probe timeout, so every reply
    // arrives after its probe was declared lost. Before the correlation fix
    // the engine would digest each of those replies with a stale RTT; now
    // every one must surface as ignored and the coordinate must never move.
    let (sockets, real_addrs) = bind_real_sockets(2);
    let harness = DelayHarness::builder(2)
        .seed(7)
        .default_link(LinkSpec::from_rtt(160.0))
        .start(&real_addrs)
        .expect("start harness");

    let mut sockets = sockets.into_iter();
    let config = |index: usize, seeds: Vec<SocketAddr>| RuntimeConfig {
        node: NodeConfig::paper_defaults(),
        seeds,
        advertised_addr: Some(harness.public_addr(index)),
        probe_interval_ms: 10,
        probe_timeout_ms: 30,
        stats_interval_ms: 0,
        snapshot_path: None,
    };
    let a = NodeRuntime::start(
        sockets.next().unwrap(),
        config(0, vec![harness.public_addr(1)]),
    )
    .expect("start a");
    let b = NodeRuntime::start(sockets.next().unwrap(), config(1, Vec::new())).expect("start b");

    std::thread::sleep(Duration::from_millis(1_200));
    let stats = a.stats();
    assert!(stats.probes_sent > 10);
    assert!(stats.probes_lost > 0, "every probe times out: {stats:?}");
    assert!(
        stats.responses_received > 0,
        "replies do arrive, just late: {stats:?}"
    );
    assert!(
        stats.responses_ignored > 0,
        "late replies surface as ResponseIgnored: {stats:?}"
    );
    // No late reply was digested: the coordinate never moved off the origin.
    let (coordinate, _) = a.coordinate();
    assert_eq!(coordinate, Coordinate::origin(3));
    a.shutdown().expect("shutdown a");
    b.shutdown().expect("shutdown b");
}

#[test]
fn query_snapshots_serve_nearest_replica_without_the_engine_lock() {
    // Two nodes converge on an emulated 40 ms link while a QueryHandle —
    // the read path a deployment answers anycast lookups from — watches
    // from outside the engine lock. The published snapshot must contain
    // the node itself plus the probed peer, resolve the peer's coordinate,
    // and rank the peer as the nearest replica to its own position.
    let (sockets, real_addrs) = bind_real_sockets(2);
    let harness = DelayHarness::builder(2)
        .seed(23)
        .default_link(LinkSpec::from_rtt(40.0))
        .start(&real_addrs)
        .expect("start harness");

    let mut sockets = sockets.into_iter();
    let config = |index: usize, seeds: Vec<SocketAddr>| RuntimeConfig {
        node: NodeConfig::paper_defaults(),
        seeds,
        advertised_addr: Some(harness.public_addr(index)),
        probe_interval_ms: 5,
        probe_timeout_ms: 500,
        stats_interval_ms: 0,
        snapshot_path: None,
    };
    let a = NodeRuntime::start(
        sockets.next().unwrap(),
        config(0, vec![harness.public_addr(1)]),
    )
    .expect("start a");
    let b = NodeRuntime::start(sockets.next().unwrap(), config(1, Vec::new())).expect("start b");

    let handle = a.query_handle();
    // The startup publish happens before any exchange: an empty-but-alive
    // snapshot (node at the origin) is already queryable.
    assert!(!handle.snapshot().is_empty());

    std::thread::sleep(Duration::from_secs(3));
    let snapshot = handle.snapshot();
    assert!(
        snapshot.len() >= 2,
        "own coordinate plus the probed peer, got {}",
        snapshot.len()
    );
    let peer = harness.public_addr(1);
    let peer_coordinate = snapshot
        .coordinate_of(&peer)
        .expect("probed peer is indexed")
        .clone();
    let hit = snapshot
        .nearest(&peer_coordinate)
        .expect("valid query")
        .expect("non-empty index");
    assert_eq!(hit.id, peer, "the peer is its own nearest replica");
    // The snapshot is a stable value: runtime progress never mutates it
    // under a reader, and dropping the runtimes cannot invalidate it.
    a.shutdown().expect("shutdown a");
    b.shutdown().expect("shutdown b");
    assert!(snapshot.coordinate_of(&peer).is_some());
}

#[test]
fn duplicated_replies_are_applied_once_and_ignored_after() {
    // Every datagram is delivered twice. Each probe is applied exactly once;
    // the byte-identical second copy surfaces as ignored and the pair still
    // converges to the emulated RTT.
    let (sockets, real_addrs) = bind_real_sockets(2);
    let harness = DelayHarness::builder(2)
        .seed(11)
        .default_link(LinkSpec::from_rtt(40.0).with_duplication(1.0))
        .start(&real_addrs)
        .expect("start harness");

    let mut sockets = sockets.into_iter();
    let config = |index: usize, seeds: Vec<SocketAddr>| RuntimeConfig {
        node: NodeConfig::paper_defaults(),
        seeds,
        advertised_addr: Some(harness.public_addr(index)),
        probe_interval_ms: 5,
        probe_timeout_ms: 500,
        stats_interval_ms: 0,
        snapshot_path: None,
    };
    let a = NodeRuntime::start(
        sockets.next().unwrap(),
        config(0, vec![harness.public_addr(1)]),
    )
    .expect("start a");
    let b = NodeRuntime::start(sockets.next().unwrap(), config(1, Vec::new())).expect("start b");

    std::thread::sleep(Duration::from_secs(3));
    let stats = a.stats();
    assert!(harness.duplicated() > 0);
    assert!(
        stats.responses_ignored > 0,
        "duplicate replies surface as ResponseIgnored: {stats:?}"
    );
    assert!(
        stats.responses_received > stats.responses_ignored,
        "originals are still applied: {stats:?}"
    );
    // Duplicates did not distort the measurement: the pair converges to the
    // emulated 40 ms round trip.
    let estimated = a.coordinate().0.distance(&b.coordinate().0);
    assert!(
        (estimated - 40.0).abs() / 40.0 < 0.25,
        "estimated {estimated:.1} ms for an emulated 40 ms link"
    );
    a.shutdown().expect("shutdown a");
    b.shutdown().expect("shutdown b");
}
