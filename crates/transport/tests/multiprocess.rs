//! Multi-process deployment test: three `nc-node` processes on loopback.
//!
//! This is the closest the test suite gets to a real deployment: separate
//! OS processes, discovering each other through seed addresses and gossip,
//! exchanging binary datagrams over real sockets, and persisting snapshots
//! on exit. The test drives the actual `nc-node` binary (Cargo builds it
//! and exposes the path via `CARGO_BIN_EXE_nc-node`).

use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use nc_proto::{BinaryMessage, NodeSnapshot};

const NC_NODE: &str = env!("CARGO_BIN_EXE_nc-node");

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("nc-multiprocess-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_node(duration_s: u64, snapshot: &PathBuf, seeds: &[SocketAddr]) -> Child {
    let mut command = Command::new(NC_NODE);
    command
        .arg("--bind")
        .arg("127.0.0.1:0")
        .arg("--probe-interval-ms")
        .arg("25")
        .arg("--probe-timeout-ms")
        .arg("500")
        .arg("--stats-interval-s")
        .arg("1")
        .arg("--duration-s")
        .arg(duration_s.to_string())
        .arg("--snapshot")
        .arg(snapshot);
    for seed in seeds {
        command.arg("--seed").arg(seed.to_string());
    }
    command
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .stdin(Stdio::null())
        .spawn()
        .expect("spawn nc-node")
}

/// Reads the `nc-node listening on ADDR` banner from a child's stdout.
/// Byte-by-byte: a buffered reader would swallow lines printed after the
/// banner, and `wait_with_output` must still see them.
fn read_listen_addr(child: &mut Child) -> SocketAddr {
    use std::io::Read;
    let stdout = child.stdout.as_mut().expect("piped stdout");
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while stdout.read(&mut byte).expect("banner byte") == 1 && byte[0] != b'\n' {
        line.push(byte[0]);
    }
    let line = String::from_utf8(line).expect("banner is UTF-8");
    let addr = line
        .trim()
        .strip_prefix("nc-node listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"));
    addr.parse().expect("listen address parses")
}

#[test]
fn three_processes_converge_and_persist_restorable_snapshots() {
    let dir = temp_dir("trio");
    let snapshots: Vec<PathBuf> = (0..3).map(|i| dir.join(format!("node-{i}.snap"))).collect();

    // The first node is the rendezvous: the others seed from its address
    // and learn about each other through gossip.
    let mut first = spawn_node(4, &snapshots[0], &[]);
    let first_addr = read_listen_addr(&mut first);
    let mut second = spawn_node(3, &snapshots[1], &[first_addr]);
    let second_addr = read_listen_addr(&mut second);
    let mut third = spawn_node(3, &snapshots[2], &[first_addr]);
    let third_addr = read_listen_addr(&mut third);
    assert_ne!(second_addr, third_addr);

    let children = [first, second, third];
    let mut outputs = Vec::new();
    for child in children {
        let output = child
            .wait_with_output()
            .expect("nc-node runs to completion");
        assert!(
            output.status.success(),
            "nc-node exited with {:?}",
            output.status
        );
        outputs.push(String::from_utf8_lossy(&output.stdout).to_string());
    }

    for (index, output) in outputs.iter().enumerate() {
        // Each process printed stats lines and its final summary.
        assert!(
            output.contains("nc-node final:"),
            "node {index} printed no final line:\n{output}"
        );
        assert!(
            output.contains("nc-node snapshot persisted"),
            "node {index} persisted no snapshot:\n{output}"
        );
        // The final line proves real cross-process traffic: probes were
        // answered and responses heard.
        let final_line = output
            .lines()
            .find(|line| line.contains("nc-node final:"))
            .expect("final line");
        let recv: u64 = final_line
            .split_whitespace()
            .find_map(|field| field.strip_prefix("recv="))
            .expect("recv field")
            .parse()
            .expect("recv count");
        assert!(recv > 0, "node {index} heard no responses: {final_line}");
    }

    // Gossip spread the third node's address: the second node's snapshot
    // knows more peers than its single seed.
    let mut snapshot_peer_counts = Vec::new();
    for path in &snapshots {
        let bytes = std::fs::read(path).expect("snapshot file");
        let snapshot = NodeSnapshot::<SocketAddr>::decode_binary(&bytes).expect("decodes");
        assert!(snapshot.observations > 0);
        snapshot_peer_counts.push(snapshot.membership.len());
    }
    assert!(
        snapshot_peer_counts[1] >= 2 || snapshot_peer_counts[2] >= 2,
        "gossip should spread beyond the seed: {snapshot_peer_counts:?}"
    );

    // A persisted snapshot restarts a process with its coordinate intact.
    let mut restarted = spawn_node(1, &snapshots[1], &[first_addr]);
    let _ = read_listen_addr(&mut restarted);
    let output = restarted.wait_with_output().expect("restart completes");
    assert!(output.status.success());
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(
        text.contains("nc-node restored snapshot"),
        "restart must announce the restore:\n{text}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_exit_with_usage() {
    let output = Command::new(NC_NODE)
        .arg("--nonsense")
        .stdin(Stdio::null())
        .output()
        .expect("run nc-node");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("usage:"));

    let output = Command::new(NC_NODE)
        .stdin(Stdio::null())
        .output()
        .expect("run nc-node");
    assert_eq!(output.status.code(), Some(2), "--bind is required");
}
