//! Publish/subscribe handles for serving queries off the engine thread.
//!
//! A deployed node answers coordinate queries from its socket thread while
//! its engine thread keeps updating the index. Rather than sharing one
//! mutable index behind a lock held across whole queries, the engine
//! publishes immutable snapshots: [`QueryPublisher::publish`] swaps in a
//! fresh [`CoordinateIndex`] behind an `Arc`, and every
//! [`QueryHandle::snapshot`] call gets the latest published index to query
//! lock-free for as long as it likes. Readers never block the publisher and
//! never observe a half-updated index.

use std::sync::{Arc, RwLock};

use crate::index::CoordinateIndex;

/// The writer half: owns the slot that [`QueryHandle`]s read from.
#[derive(Debug)]
pub struct QueryPublisher<Id> {
    slot: Arc<RwLock<Arc<CoordinateIndex<Id>>>>,
}

/// The reader half: cheap to clone, hand one to every thread that answers
/// queries.
#[derive(Debug)]
pub struct QueryHandle<Id> {
    slot: Arc<RwLock<Arc<CoordinateIndex<Id>>>>,
}

impl<Id> Clone for QueryHandle<Id> {
    fn clone(&self) -> Self {
        QueryHandle {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<Id> QueryPublisher<Id> {
    /// Creates a publisher seeded with an initial index (usually empty).
    pub fn new(index: CoordinateIndex<Id>) -> Self {
        QueryPublisher {
            slot: Arc::new(RwLock::new(Arc::new(index))),
        }
    }

    /// Replaces the published snapshot. Readers holding the previous
    /// snapshot keep it alive until they drop it; new `snapshot()` calls
    /// see this index.
    pub fn publish(&self, index: CoordinateIndex<Id>) {
        let fresh = Arc::new(index);
        match self.slot.write() {
            Ok(mut guard) => *guard = fresh,
            // A reader can only poison the lock by panicking mid-clone;
            // the slot itself is still a valid Arc, so keep serving.
            Err(poisoned) => *poisoned.into_inner() = fresh,
        }
    }

    /// The most recently published snapshot (what a fresh handle would
    /// see).
    pub fn snapshot(&self) -> Arc<CoordinateIndex<Id>> {
        read_slot(&self.slot)
    }

    /// Creates a reader handle bound to this publisher's slot.
    pub fn handle(&self) -> QueryHandle<Id> {
        QueryHandle {
            slot: Arc::clone(&self.slot),
        }
    }
}

impl<Id> QueryHandle<Id> {
    /// The latest published index. The returned snapshot is immutable and
    /// wholly owned: queries on it never contend with the publisher.
    pub fn snapshot(&self) -> Arc<CoordinateIndex<Id>> {
        read_slot(&self.slot)
    }
}

fn read_slot<Id>(slot: &Arc<RwLock<Arc<CoordinateIndex<Id>>>>) -> Arc<CoordinateIndex<Id>> {
    match slot.read() {
        Ok(guard) => Arc::clone(&guard),
        Err(poisoned) => Arc::clone(&poisoned.into_inner()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryConfig;
    use nc_vivaldi::Coordinate;

    #[test]
    fn handles_see_published_snapshots() {
        let empty: CoordinateIndex<u32> = CoordinateIndex::new(QueryConfig::default()).unwrap();
        let publisher = QueryPublisher::new(empty);
        let handle = publisher.handle();
        assert!(handle.snapshot().is_empty());

        let mut next = CoordinateIndex::new(QueryConfig::default()).unwrap();
        next.update(7, &Coordinate::new([1.0, 2.0, 3.0]).unwrap())
            .unwrap();
        publisher.publish(next);
        assert_eq!(handle.snapshot().len(), 1);
        assert_eq!(publisher.snapshot().len(), 1);

        // An old snapshot taken before a publish stays valid and unchanged.
        let old = handle.snapshot();
        publisher.publish(CoordinateIndex::new(QueryConfig::default()).unwrap());
        assert_eq!(old.len(), 1);
        assert!(handle.snapshot().is_empty());
    }

    #[test]
    fn snapshots_cross_threads() {
        let publisher =
            QueryPublisher::new(CoordinateIndex::<u32>::new(QueryConfig::default()).unwrap());
        let handle = publisher.handle();
        let reader = std::thread::spawn(move || handle.snapshot().len());
        let mut idx = CoordinateIndex::new(QueryConfig::default()).unwrap();
        idx.update(1, &Coordinate::origin(3)).unwrap();
        publisher.publish(idx);
        // Whichever snapshot the reader raced to is a valid index.
        let seen = reader.join().unwrap();
        assert!(seen == 0 || seen == 1);
    }
}
