//! The sharded Z-order coordinate index.
//!
//! Every tracked node is one entry: its coordinate quantized onto a fixed
//! grid, Morton-interleaved into a `u128` key ([`crate::curve`]), and kept
//! in a sorted shard-per-key-range layout. Point updates are `O(log n)`
//! re-insertions; k-nearest-node queries are 1-D range scans over the key
//! order with exact-distance re-ranking, so the quantization never affects
//! *which* nodes are returned — only how many entries the scan must touch.
//!
//! # Exactness
//!
//! A k-NN query runs in two phases. The seed phase ranks a span of
//! key-order neighbours of the target (a small multiple of `k` in each
//! direction) and takes the k-th smallest exact distance as an upper
//! bound `D`. Because the Vivaldi distance
//! `‖a − b‖ + h_a + h_b` dominates every per-axis difference and heights
//! are non-negative (enforced at ingest), any node within `D` of the
//! target lies inside the axis-aligned box `[tᵢ − r, tᵢ + r]` per
//! dimension with `r = D − h_target`, and quantization is monotone, so the
//! box's quantized corners bound the candidate set exactly. The scan phase
//! walks the key range of that box, stepping over short out-of-box gaps
//! and BIGMIN-jumping the long ones, and re-ranks by exact distance with a
//! total `(distance, id)` order. Every time the k-th best distance
//! improves it becomes the new `D` and the box contracts, so the scan
//! range keeps tightening around the answer. The result is byte-identical
//! to a brute-force scan of every entry (the oracle the test suite
//! compares against): pruning only ever discards entries strictly farther
//! than the current k-th best, and distance ties stay inside the box
//! because the corners are inclusive.
//!
//! # Shards
//!
//! Entries live in a `Vec` of sorted shards. A shard that outgrows the
//! configured capacity splits in half; a shard that shrinks below a quarter
//! of capacity merges into a neighbour when the result still fits. Under
//! occupancy skew (every insert landing in one key range) the layout
//! therefore rebalances itself: no shard ever exceeds capacity, and binary
//! search over shard bounds keeps updates logarithmic.

use nc_vivaldi::Coordinate;
use stable_nc::{FxHashMap, NodeView};

use crate::curve::{bigmin, dimension_masks, interleave, BITS_PER_DIM, MAX_DIMENSIONS};
use crate::{QueryConfig, QueryError};

/// One query answer: a node, its exact current distance to the query
/// target, and the coordinate that distance was computed from.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryMatch<Id> {
    /// The matched node.
    pub id: Id,
    /// Exact Vivaldi distance from the query target, in milliseconds.
    pub distance_ms: f64,
    /// The node's indexed coordinate.
    pub coordinate: Coordinate,
}

/// One occupied region of the key space, as reported by
/// [`CoordinateIndex::clusters`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSummary {
    /// The shared Morton-key prefix (the cluster's cell on the coarsened
    /// grid).
    pub prefix: u128,
    /// Number of nodes in the cluster.
    pub count: usize,
    /// Centroid of the member coordinates.
    pub centroid: Coordinate,
}

/// A node's stored state: its Morton key and exact coordinate.
#[derive(Debug, Clone)]
struct Stored {
    key: u128,
    coordinate: Coordinate,
}

/// One shard entry: a node's key, id and an inline copy of its exact
/// coordinate, so range scans rank candidates from the memory they are
/// already streaming instead of taking one random `positions` lookup per
/// candidate.
#[derive(Debug, Clone)]
struct Entry<Id> {
    key: u128,
    id: Id,
    coordinate: Coordinate,
}

/// Out-of-box entries to step over linearly before paying for a BIGMIN
/// jump plus binary search: short gaps are far cheaper to walk (a few
/// masked compares each) than to jump, and long gaps still get skipped
/// wholesale.
const LINEAR_PROBE: usize = 12;

/// Key-order neighbours sampled per scan direction in the seed phase, as a
/// multiple of `k`.
const SEED_SPAN: usize = 4;

/// A box rebuild happens only when the k-th best distance drops below this
/// fraction of the bound the current box was built from: rebuilds are
/// geometric, at most a handful per query, while the box still tracks the
/// contracting answer.
const SHRINK_FACTOR: f64 = 0.75;

/// A query's current search box: Morton corner keys plus the per-dimension
/// masked corner values ([`dimension_masks`]) that the scan's in-box test
/// compares entry keys against.
struct QueryBox {
    zmin: u128,
    zmax: u128,
    lo: [u128; MAX_DIMENSIONS],
    hi: [u128; MAX_DIMENSIONS],
}

/// The in-memory coordinate index. See the [module docs](self) for the
/// layout and exactness argument.
#[derive(Debug, Clone)]
pub struct CoordinateIndex<Id> {
    config: QueryConfig,
    /// Exact coordinate and key per node — the authoritative copy that
    /// point updates consult; the shards carry a second, inline copy for
    /// scan locality.
    positions: FxHashMap<Id, Stored>,
    /// Sorted-by-`(key, id)` shards partitioning the key order.
    shards: Vec<Vec<Entry<Id>>>,
    /// The last entry of each shard, kept parallel to `shards`: locating a
    /// key binary-searches this contiguous array instead of chasing one
    /// heap pointer per probed shard.
    fences: Vec<(u128, Id)>,
    splits: u64,
    merges: u64,
}

impl<Id: Clone + Ord + std::hash::Hash> CoordinateIndex<Id> {
    /// Creates an empty index.
    ///
    /// # Errors
    ///
    /// Returns the [`QueryError`] reported by [`QueryConfig::validate`].
    pub fn new(config: QueryConfig) -> Result<Self, QueryError> {
        let config = config.validate()?;
        Ok(CoordinateIndex {
            config,
            positions: FxHashMap::default(),
            shards: Vec::new(),
            fences: Vec::new(),
            splits: 0,
            merges: 0,
        })
    }

    /// The configuration the index was built with.
    pub fn config(&self) -> &QueryConfig {
        &self.config
    }

    /// Number of tracked nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no node is tracked.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of shards currently partitioning the key order.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// `(smallest, largest)` shard occupancy, or `(0, 0)` when empty.
    pub fn occupancy(&self) -> (usize, usize) {
        let mut smallest = usize::MAX;
        let mut largest = 0usize;
        for shard in &self.shards {
            smallest = smallest.min(shard.len());
            largest = largest.max(shard.len());
        }
        if largest == 0 {
            (0, 0)
        } else {
            (smallest, largest)
        }
    }

    /// `(splits, merges)` performed over the index's lifetime — how often
    /// occupancy skew forced the shard layout to rebalance.
    pub fn rebalances(&self) -> (u64, u64) {
        (self.splits, self.merges)
    }

    /// Checks a coordinate against the index dimensionality and finiteness.
    fn check(&self, coordinate: &Coordinate) -> Result<(), QueryError> {
        if coordinate.dimensions() != self.config.dimensions {
            return Err(QueryError::DimensionMismatch {
                expected: self.config.dimensions,
                got: coordinate.dimensions(),
            });
        }
        let finite = coordinate.components().iter().all(|c| c.is_finite())
            && coordinate.height().is_finite();
        if !finite {
            return Err(QueryError::NonFiniteCoordinate);
        }
        // Construction forbids negative heights, but arithmetic (e.g. a
        // negative scale) can still produce them; the k-NN box math sheds
        // heights from the search radius, so a negative one would silently
        // shrink the box past valid candidates. Reject at the boundary.
        if coordinate.height() < 0.0 {
            return Err(QueryError::NegativeHeight);
        }
        Ok(())
    }

    /// Maps one component onto the quantized grid. Monotone and clamping:
    /// values outside `±coordinate_bound_ms` land in the edge cells.
    fn quantize(&self, x: f64) -> u16 {
        let bound = self.config.coordinate_bound_ms;
        let cells = (1u64 << BITS_PER_DIM) as f64;
        let t = ((x + bound) / (2.0 * bound)) * cells;
        t.floor().clamp(0.0, cells - 1.0) as u16
    }

    /// The Morton key of a coordinate.
    fn key_for(&self, coordinate: &Coordinate) -> u128 {
        let mut cells = [0u16; MAX_DIMENSIONS];
        for (slot, &x) in cells.iter_mut().zip(coordinate.components()) {
            *slot = self.quantize(x);
        }
        interleave(cells.get(..self.config.dimensions).unwrap_or(&[]))
    }

    /// Inserts or moves a node. Returns `true` when the node was new.
    ///
    /// A re-insertion whose quantized cell is unchanged only refreshes the
    /// stored exact coordinate; the shard layout is untouched.
    ///
    /// # Errors
    ///
    /// Rejects coordinates of the wrong dimensionality or with non-finite
    /// components.
    pub fn update(&mut self, id: Id, coordinate: &Coordinate) -> Result<bool, QueryError> {
        self.check(coordinate)?;
        let key = self.key_for(coordinate);
        match self.positions.get_mut(&id) {
            Some(stored) => {
                let old_key = stored.key;
                stored.key = key;
                stored.coordinate = coordinate.clone();
                if old_key == key {
                    // Same quantized cell: the shard layout is untouched,
                    // but the inline copy must track the exact coordinate.
                    self.refresh_entry(key, &id, coordinate);
                } else {
                    self.remove_entry(old_key, &id);
                    self.insert_entry(key, id, coordinate.clone());
                }
                Ok(false)
            }
            None => {
                self.positions.insert(
                    id.clone(),
                    Stored {
                        key,
                        coordinate: coordinate.clone(),
                    },
                );
                self.insert_entry(key, id, coordinate.clone());
                Ok(true)
            }
        }
    }

    /// Removes a node. Returns `true` when it was tracked.
    pub fn remove(&mut self, id: &Id) -> bool {
        match self.positions.remove(id) {
            Some(stored) => {
                self.remove_entry(stored.key, id);
                true
            }
            None => false,
        }
    }

    /// Ingests one engine introspection snapshot: the owner's own
    /// application-level coordinate (when `owner` names it) plus the
    /// coordinate of every neighbour in the view. Returns how many entries
    /// were inserted or refreshed; peers whose coordinate dimensionality
    /// does not match the index are skipped.
    pub fn absorb_view(
        &mut self,
        owner: Option<&Id>,
        view: &NodeView<Id>,
    ) -> Result<usize, QueryError> {
        let mut touched = 0usize;
        if let Some(owner) = owner {
            if self.update(owner.clone(), &view.application).is_ok() {
                touched += 1;
            }
        }
        for peer in &view.neighbors {
            if self.update(peer.id.clone(), &peer.coordinate).is_ok() {
                touched += 1;
            }
        }
        Ok(touched)
    }

    /// The `k` nodes nearest to `target` by exact Vivaldi distance, sorted
    /// ascending with `(distance, id)` tie-breaking. Returns fewer than `k`
    /// matches only when fewer nodes are tracked.
    ///
    /// # Errors
    ///
    /// Rejects targets of the wrong dimensionality or with non-finite
    /// components.
    pub fn k_nearest(
        &self,
        target: &Coordinate,
        k: usize,
    ) -> Result<Vec<QueryMatch<Id>>, QueryError> {
        self.check(target)?;
        if k == 0 || self.positions.is_empty() {
            return Ok(Vec::new());
        }
        if self.positions.len() <= k.saturating_mul(2) {
            // Small index (or huge k): the seed phase would touch every
            // entry anyway, so rank them all directly.
            return Ok(self.rank_all(target, k));
        }

        // Seed: the entries nearest in *key* order give an upper bound D on
        // the k-th nearest exact distance. Key neighbours are sequential
        // memory, so over-sampling beyond k is nearly free and a tighter
        // initial bound shrinks the whole scan that follows.
        let span = k.saturating_mul(SEED_SPAN);
        let zq = self.key_for(target);
        let mut seed = RankedSet::new(k);
        let start = self.locate_key(zq);
        let mut forward = start;
        let mut taken = 0usize;
        while taken < span {
            let Some(entry) = self.entry_at(forward) else {
                break;
            };
            seed.offer(target.distance(&entry.coordinate), &entry.id);
            forward = self.advance(forward);
            taken += 1;
        }
        let mut backward = start;
        taken = 0;
        while taken < span {
            let Some(previous) = self.retreat(backward) else {
                break;
            };
            backward = previous;
            if let Some(entry) = self.entry_at(backward) {
                seed.offer(target.distance(&entry.coordinate), &entry.id);
            }
            taken += 1;
        }
        let Some(bound) = seed.worst() else {
            // The seed under-filled (cannot happen while shards and
            // positions agree, since len > 2k here); fall back to the
            // oracle-equivalent full scan rather than guess a bound.
            return Ok(self.rank_all(target, k));
        };

        // Box: every node within `bound` of the target lies inside this
        // quantized axis-aligned box (see the module docs). The box shrinks
        // as the scan finds closer candidates.
        let mut bound = bound;
        let dims = self.config.dimensions;
        let masks = dimension_masks(dims as u32);
        let mut qbox = self.query_box(target, bound, &masks);

        // Scan the box's key range, stepping over short out-of-box gaps
        // entry by entry and BIGMIN-jumping the long ones, re-ranking every
        // in-box entry by exact distance.
        let mut best = RankedSet::new(k);
        let (mut si, mut ei) = self.locate_key(qbox.zmin);
        let mut outside_streak = 0usize;
        'shards: while let Some(shard) = self.shards.get(si) {
            while let Some(entry) = shard.get(ei) {
                let key = entry.key;
                if key > qbox.zmax {
                    break 'shards;
                }
                let in_box = masks
                    .iter()
                    .zip(qbox.lo.iter().zip(qbox.hi.iter()))
                    .take(dims)
                    .all(|(mask, (lo, hi))| {
                        let masked = key & mask;
                        (*lo..=*hi).contains(&masked)
                    });
                if in_box {
                    outside_streak = 0;
                    best.offer(target.distance(&entry.coordinate), &entry.id);
                    // The k-th best so far is itself a valid radius:
                    // tighten the box when it improves meaningfully, so
                    // the remaining scan range keeps contracting around
                    // the answer. Rebuilding costs a re-quantization, so
                    // only geometric improvements pay for one; any valid
                    // upper bound keeps the scan exact.
                    if let Some(worst) = best.worst() {
                        if worst < bound * SHRINK_FACTOR {
                            bound = worst;
                            qbox = self.query_box(target, bound, &masks);
                        }
                    }
                    ei += 1;
                } else if outside_streak < LINEAR_PROBE {
                    // Short gap: stepping an entry forward costs a few
                    // masked compares, far less than a BIGMIN jump plus
                    // binary search.
                    outside_streak += 1;
                    ei += 1;
                } else {
                    // Long gap: the whole key range up to BIGMIN lies
                    // outside the box.
                    outside_streak = 0;
                    match bigmin(key, qbox.zmin, qbox.zmax, dims as u32, &masks) {
                        Some(next) if next > key => {
                            // Most jumps land in the current shard: bisect
                            // its remaining slice before paying for the
                            // full fence search.
                            match shard.get(ei..) {
                                Some(rest) if rest.last().is_some_and(|last| next <= last.key) => {
                                    ei += rest.partition_point(|e| e.key < next);
                                }
                                _ => {
                                    (si, ei) = self.locate_key(next);
                                    continue 'shards;
                                }
                            }
                        }
                        _ => break 'shards,
                    }
                }
            }
            si += 1;
            ei = 0;
        }
        Ok(self.resolve(best))
    }

    /// The quantized axis-aligned box guaranteed to contain every node
    /// within `bound` of `target`: stored heights are non-negative and the
    /// target's height enters every distance, so the Euclidean radius sheds
    /// `target.height()` up front. Returns the box's Morton corner keys and
    /// the per-dimension masked corner values the in-box test compares
    /// against.
    fn query_box(
        &self,
        target: &Coordinate,
        bound: f64,
        masks: &[u128; MAX_DIMENSIONS],
    ) -> QueryBox {
        let radius = (bound - target.height()).max(0.0);
        let mut lo = [0u16; MAX_DIMENSIONS];
        let mut hi = [0u16; MAX_DIMENSIONS];
        for (d, &t) in target.components().iter().enumerate() {
            if let (Some(l), Some(h)) = (lo.get_mut(d), hi.get_mut(d)) {
                *l = self.quantize(t - radius);
                *h = self.quantize(t + radius);
            }
        }
        let dims = self.config.dimensions;
        let zmin = interleave(lo.get(..dims).unwrap_or(&[]));
        let zmax = interleave(hi.get(..dims).unwrap_or(&[]));
        let mut lo_masked = [0u128; MAX_DIMENSIONS];
        let mut hi_masked = [0u128; MAX_DIMENSIONS];
        for (d, mask) in masks.iter().enumerate().take(dims) {
            if let (Some(l), Some(h)) = (lo_masked.get_mut(d), hi_masked.get_mut(d)) {
                *l = zmin & mask;
                *h = zmax & mask;
            }
        }
        QueryBox {
            zmin,
            zmax,
            lo: lo_masked,
            hi: hi_masked,
        }
    }

    /// The single node nearest to `target` — the closest-replica query.
    ///
    /// # Errors
    ///
    /// Rejects targets of the wrong dimensionality or with non-finite
    /// components.
    pub fn nearest(&self, target: &Coordinate) -> Result<Option<QueryMatch<Id>>, QueryError> {
        Ok(self.k_nearest(target, 1)?.into_iter().next())
    }

    /// Centroid of every tracked coordinate, or `None` when empty.
    /// Summation runs in key order, so the result is a pure function of the
    /// index contents.
    pub fn centroid(&self) -> Option<Coordinate> {
        Coordinate::centroid_iter(self.shards.iter().flatten().map(|e| &e.coordinate))
    }

    /// Groups the tracked nodes by the top `prefix_bits` of their Morton
    /// key — the occupied cells of a coarsened grid — and returns one
    /// [`ClusterSummary`] per occupied cell, in key order.
    ///
    /// # Errors
    ///
    /// `prefix_bits` must not exceed `16 × dimensions`.
    pub fn clusters(&self, prefix_bits: u32) -> Result<Vec<ClusterSummary>, QueryError> {
        let total = BITS_PER_DIM * self.config.dimensions as u32;
        if prefix_bits > total {
            return Err(QueryError::PrefixBitsOutOfRange {
                bits: prefix_bits,
                max: total,
            });
        }
        let shift = total - prefix_bits;
        let mut clusters: Vec<ClusterSummary> = Vec::new();
        let mut members: Vec<&Coordinate> = Vec::new();
        let mut current: Option<u128> = None;
        let flush = |clusters: &mut Vec<ClusterSummary>,
                     prefix: Option<u128>,
                     members: &mut Vec<&Coordinate>| {
            if let (Some(prefix), Some(centroid)) =
                (prefix, Coordinate::centroid_iter(members.iter().copied()))
            {
                clusters.push(ClusterSummary {
                    prefix,
                    count: members.len(),
                    centroid,
                });
            }
            members.clear();
        };
        for entry in self.shards.iter().flatten() {
            let prefix = if shift >= 128 { 0 } else { entry.key >> shift };
            if current != Some(prefix) {
                flush(&mut clusters, current, &mut members);
                current = Some(prefix);
            }
            members.push(&entry.coordinate);
        }
        flush(&mut clusters, current, &mut members);
        Ok(clusters)
    }

    /// The tracked coordinate of one node, `None` when it is not indexed.
    pub fn coordinate_of(&self, id: &Id) -> Option<&Coordinate> {
        self.positions.get(id).map(|stored| &stored.coordinate)
    }

    /// Iterates `(id, coordinate)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Id, &Coordinate)> {
        self.shards.iter().flatten().map(|e| (&e.id, &e.coordinate))
    }

    /// Ranks every tracked node by exact distance — the brute-force path
    /// used for small indexes and as the defensive fallback.
    fn rank_all(&self, target: &Coordinate, k: usize) -> Vec<QueryMatch<Id>> {
        let mut best = RankedSet::new(k);
        for shard in &self.shards {
            for entry in shard {
                best.offer(target.distance(&entry.coordinate), &entry.id);
            }
        }
        self.resolve(best)
    }

    /// Materialises a ranked set into query matches with coordinates.
    fn resolve(&self, best: RankedSet<Id>) -> Vec<QueryMatch<Id>> {
        best.into_sorted()
            .into_iter()
            .filter_map(|(distance_ms, id)| {
                self.positions.get(&id).map(|stored| QueryMatch {
                    id,
                    distance_ms,
                    coordinate: stored.coordinate.clone(),
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Shard plumbing.
    // ------------------------------------------------------------------

    /// Position of the first entry whose key is `>= key`, as a
    /// `(shard, offset)` cursor; `(shard_count, 0)` when every entry is
    /// smaller.
    fn locate_key(&self, key: u128) -> (usize, usize) {
        let si = self.fences.partition_point(|(k, _)| *k < key);
        match self.shards.get(si) {
            Some(shard) => (si, shard.partition_point(|e| e.key < key)),
            None => (si, 0),
        }
    }

    /// The entry under a cursor, if any.
    fn entry_at(&self, cursor: (usize, usize)) -> Option<&Entry<Id>> {
        self.shards.get(cursor.0)?.get(cursor.1)
    }

    /// The cursor one entry forward in key order.
    fn advance(&self, cursor: (usize, usize)) -> (usize, usize) {
        let len = self.shards.get(cursor.0).map(Vec::len).unwrap_or(0);
        if cursor.1 + 1 < len {
            (cursor.0, cursor.1 + 1)
        } else {
            (cursor.0 + 1, 0)
        }
    }

    /// The cursor one entry backward in key order, or `None` at the start.
    fn retreat(&self, cursor: (usize, usize)) -> Option<(usize, usize)> {
        if cursor.1 > 0 {
            return Some((cursor.0, cursor.1 - 1));
        }
        let mut si = cursor.0;
        while si > 0 {
            si -= 1;
            if let Some(shard) = self.shards.get(si) {
                if !shard.is_empty() {
                    return Some((si, shard.len() - 1));
                }
            }
        }
        None
    }

    /// Index of the shard an `(key, id)` entry belongs to (for insertion:
    /// clamped to the last shard).
    fn shard_for(&self, key: u128, id: &Id) -> usize {
        let si = self
            .fences
            .partition_point(|(k, i)| k.cmp(&key).then_with(|| i.cmp(id)).is_lt());
        si.min(self.shards.len().saturating_sub(1))
    }

    /// Re-derives the cached fence of shard `si` from its current last
    /// entry. A no-op for out-of-range or empty shards (callers remove
    /// those outright).
    fn refresh_fence(&mut self, si: usize) {
        if let (Some(fence), Some(last)) = (
            self.fences.get_mut(si),
            self.shards.get(si).and_then(|shard| shard.last()),
        ) {
            fence.0 = last.key;
            fence.1.clone_from(&last.id);
        }
    }

    /// Rewrites the inline coordinate of an existing `(key, id)` entry —
    /// the same-cell update fast path, which leaves the layout untouched.
    fn refresh_entry(&mut self, key: u128, id: &Id, coordinate: &Coordinate) {
        let si = self.shard_for(key, id);
        let Some(shard) = self.shards.get_mut(si) else {
            return;
        };
        if let Ok(pos) = shard.binary_search_by(|e| e.key.cmp(&key).then_with(|| e.id.cmp(id))) {
            if let Some(entry) = shard.get_mut(pos) {
                entry.coordinate.clone_from(coordinate);
            }
        }
    }

    /// Inserts an entry, splitting the receiving shard when it overflows.
    fn insert_entry(&mut self, key: u128, id: Id, coordinate: Coordinate) {
        if self.shards.is_empty() {
            self.fences.push((key, id.clone()));
            self.shards.push(vec![Entry {
                key,
                id,
                coordinate,
            }]);
            return;
        }
        let si = self.shard_for(key, &id);
        let capacity = self.config.max_shard_entries;
        let Some(shard) = self.shards.get_mut(si) else {
            return;
        };
        let pos = shard.partition_point(|e| e.key.cmp(&key).then_with(|| e.id.cmp(&id)).is_lt());
        shard.insert(
            pos,
            Entry {
                key,
                id,
                coordinate,
            },
        );
        if shard.len() > capacity {
            let tail = shard.split_off(shard.len() / 2);
            self.shards.insert(si + 1, tail);
            self.splits += 1;
            // The old fence (the pre-split last entry) now closes the tail
            // shard; the left half gets a fresh one.
            if let Some(fence) = self.fences.get(si).cloned() {
                self.fences.insert(si + 1, fence);
            }
        }
        self.refresh_fence(si);
    }

    /// Removes an entry, merging the shrunken shard into a neighbour when
    /// both fit in one.
    fn remove_entry(&mut self, key: u128, id: &Id) {
        let si = self.shard_for(key, id);
        let Some(shard) = self.shards.get_mut(si) else {
            return;
        };
        let Ok(pos) = shard.binary_search_by(|e| e.key.cmp(&key).then_with(|| e.id.cmp(id))) else {
            return;
        };
        shard.remove(pos);
        let len = shard.len();
        if len == 0 {
            self.shards.remove(si);
            if self.fences.len() > si {
                self.fences.remove(si);
            }
            return;
        }
        self.refresh_fence(si);
        let capacity = self.config.max_shard_entries;
        if len >= capacity / 4 {
            return;
        }
        // Underfull: fold into whichever neighbour keeps the merge within
        // capacity, preferring the left one. The absorbed shard's fence
        // becomes the surviving shard's.
        if si > 0 {
            // bounds: si > 0 and si < shards.len(), so si - 1 is a shard.
            if let Some(left_len) = self.shards.get(si - 1).map(Vec::len) {
                if left_len + len <= capacity {
                    let tail = self.shards.remove(si);
                    if let Some(left) = self.shards.get_mut(si - 1) {
                        left.extend(tail);
                        self.merges += 1;
                    }
                    if self.fences.len() > si {
                        let fence = self.fences.remove(si);
                        if let Some(slot) = self.fences.get_mut(si - 1) {
                            *slot = fence;
                        }
                    }
                    return;
                }
            }
        }
        if let Some(right_len) = self.shards.get(si + 1).map(Vec::len) {
            if right_len + len <= capacity {
                let right = self.shards.remove(si + 1);
                if let Some(shard) = self.shards.get_mut(si) {
                    shard.extend(right);
                    self.merges += 1;
                }
                if self.fences.len() > si + 1 {
                    let fence = self.fences.remove(si + 1);
                    if let Some(slot) = self.fences.get_mut(si) {
                        *slot = fence;
                    }
                }
            }
        }
    }
}

/// A bounded best-k set ordered by `(distance, id)`: the exact-distance
/// re-ranking buffer. Insertion keeps the vector sorted; `offer` is `O(k)`
/// in the worst case and `O(log k)` when the candidate does not qualify.
struct RankedSet<Id> {
    k: usize,
    entries: Vec<(f64, Id)>,
}

impl<Id: Clone + Ord> RankedSet<Id> {
    fn new(k: usize) -> Self {
        RankedSet {
            k,
            entries: Vec::with_capacity(k.min(1024) + 1),
        }
    }

    /// The current k-th best distance — only a valid pruning bound once k
    /// candidates are held, so `None` before that.
    fn worst(&self) -> Option<f64> {
        if self.entries.len() >= self.k {
            self.entries.last().map(|(d, _)| *d)
        } else {
            None
        }
    }

    fn offer(&mut self, distance: f64, id: &Id) {
        if self.entries.len() >= self.k {
            if let Some((worst, worst_id)) = self.entries.last() {
                let candidate_wins = distance
                    .total_cmp(worst)
                    .then_with(|| id.cmp(worst_id))
                    .is_lt();
                if !candidate_wins {
                    return;
                }
            }
        }
        let pos = self
            .entries
            .partition_point(|(d, i)| d.total_cmp(&distance).then_with(|| i.cmp(id)).is_lt());
        self.entries.insert(pos, (distance, id.clone()));
        if self.entries.len() > self.k {
            self.entries.pop();
        }
    }

    fn into_sorted(self) -> Vec<(f64, Id)> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index(max_shard: usize) -> CoordinateIndex<u32> {
        CoordinateIndex::new(QueryConfig {
            dimensions: 3,
            coordinate_bound_ms: 1_000.0,
            max_shard_entries: max_shard,
        })
        .unwrap()
    }

    fn coord(x: f64, y: f64, z: f64) -> Coordinate {
        Coordinate::new([x, y, z]).unwrap()
    }

    #[test]
    fn update_insert_move_remove() {
        let mut idx = index(8);
        assert!(idx.update(1, &coord(10.0, 0.0, 0.0)).unwrap());
        assert!(!idx.update(1, &coord(500.0, 0.0, 0.0)).unwrap());
        assert_eq!(idx.len(), 1);
        assert!(idx.remove(&1));
        assert!(!idx.remove(&1));
        assert!(idx.is_empty());
        assert_eq!(idx.shard_count(), 0);
    }

    #[test]
    fn update_rejects_bad_coordinates() {
        let mut idx = index(8);
        let two_d = Coordinate::new([1.0, 2.0]).unwrap();
        assert!(matches!(
            idx.update(1, &two_d),
            Err(QueryError::DimensionMismatch {
                expected: 3,
                got: 2
            })
        ));
        // `Coordinate::new` already rejects NaN, but arithmetic on valid
        // coordinates can still produce one; the index refuses it.
        let poisoned = coord(1.0, 0.0, 0.0).scale(f64::NAN);
        assert!(matches!(
            idx.update(1, &poisoned),
            Err(QueryError::NonFiniteCoordinate)
        ));
        assert!(idx.is_empty());
    }

    #[test]
    fn knn_ranks_by_exact_distance() {
        let mut idx = index(64);
        for i in 0..100u32 {
            idx.update(i, &coord(i as f64, 0.0, 0.0)).unwrap();
        }
        let target = coord(42.3, 0.0, 0.0);
        let matches = idx.k_nearest(&target, 3).unwrap();
        let ids: Vec<u32> = matches.iter().map(|m| m.id).collect();
        assert_eq!(ids, vec![42, 43, 41]);
        assert!(matches[0].distance_ms < matches[1].distance_ms);
        assert_eq!(idx.nearest(&target).unwrap().unwrap().id, 42);
    }

    #[test]
    fn knn_on_colocated_points_breaks_ties_by_id() {
        let mut idx = index(8);
        for i in 0..20u32 {
            idx.update(i, &coord(5.0, 5.0, 5.0)).unwrap();
        }
        let ids: Vec<u32> = idx
            .k_nearest(&coord(5.0, 5.0, 5.0), 4)
            .unwrap()
            .iter()
            .map(|m| m.id)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn skewed_inserts_split_and_removals_merge() {
        let mut idx = index(16);
        // Everything lands in one corner of the key space.
        for i in 0..200u32 {
            idx.update(i, &coord(900.0 + (i as f64) * 0.4, 900.0, 900.0))
                .unwrap();
        }
        let (splits, _) = idx.rebalances();
        assert!(splits > 0, "skewed load must split shards");
        let (_, largest) = idx.occupancy();
        assert!(largest <= 16, "no shard may exceed capacity");
        for i in 0..195u32 {
            idx.remove(&i);
        }
        let (_, merges) = idx.rebalances();
        assert!(merges > 0, "draining must merge underfull shards");
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn removing_from_a_single_underfull_shard_is_safe() {
        // Regression: with one shard and no neighbours, the merge probe
        // used a usize::MAX "no neighbour" sentinel that overflowed when
        // the shard length was added to it.
        let mut idx = index(64);
        for i in 0..8u32 {
            idx.update(i, &coord(i as f64, 0.0, 0.0)).unwrap();
        }
        assert_eq!(idx.shard_count(), 1);
        assert!(idx.remove(&3));
        assert_eq!(idx.len(), 7);
    }

    #[test]
    fn centroid_and_clusters() {
        let mut idx = index(32);
        for i in 0..10u32 {
            idx.update(i, &coord(-800.0, -800.0, 0.0)).unwrap();
        }
        for i in 10..30u32 {
            idx.update(i, &coord(800.0, 800.0, 0.0)).unwrap();
        }
        let centroid = idx.centroid().unwrap();
        // 10 nodes at -800, 20 at +800 → mean +266.67 per occupied axis.
        assert!((centroid.components()[0] - 266.666).abs() < 1.0);
        let clusters = idx.clusters(6).unwrap();
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].count, 10);
        assert_eq!(clusters[1].count, 20);
        assert!((clusters[0].centroid.components()[0] + 800.0).abs() < 1.0);
    }

    #[test]
    fn absorb_view_tracks_owner_and_peers() {
        use stable_nc::{NodeConfig, ProbeResponse, StableNode};
        let mut node: StableNode<u32> = StableNode::new(NodeConfig::paper_defaults());
        let remote = coord(20.0, 30.0, 0.0);
        for i in 0..64u64 {
            let request = node.probe_request_for(7, i);
            let mut response = ProbeResponse::new(7, &request, remote.clone(), 0.5);
            response.rtt_ms = 40.0;
            node.handle_response(&response);
        }
        let mut idx = index(32);
        let touched = idx.absorb_view(Some(&0), &node.view()).unwrap();
        assert_eq!(touched, 2, "owner + one neighbour");
        assert_eq!(idx.len(), 2);
        assert_eq!(
            idx.nearest(&remote).unwrap().unwrap().id,
            7,
            "the neighbour's indexed coordinate is the one it advertised"
        );
    }

    #[test]
    fn queries_validate_the_target() {
        let idx = index(8);
        assert!(matches!(
            idx.k_nearest(&Coordinate::new([1.0]).unwrap(), 2),
            Err(QueryError::DimensionMismatch { .. })
        ));
        assert!(idx.clusters(200).is_err());
    }
}
