//! Coordinate query service: the read path over live network coordinates.
//!
//! The rest of the workspace *computes* stable coordinates — this crate
//! lets an application *ask* them something. A [`CoordinateIndex`] ingests
//! coordinate updates (from the simulator's event stream, a runtime's
//! [`stable_nc::NodeView`] snapshots, or any other driver) and serves:
//!
//! * **k-nearest-node** — the `k` tracked nodes closest to a target
//!   coordinate, exactly ranked ([`CoordinateIndex::k_nearest`]);
//! * **closest replica to a point** — the single nearest node to an
//!   arbitrary coordinate, e.g. "which mirror should this client fetch
//!   from" ([`CoordinateIndex::nearest`]);
//! * **centroid / cluster** — the population centroid and the occupied
//!   cells of a coarsened grid with per-cluster centroids
//!   ([`CoordinateIndex::centroid`], [`CoordinateIndex::clusters`]).
//!
//! The design follows the space-filling-curve construction of the
//! Distributed Overlay Anycast Tables line of work: coordinates are
//! quantized and mapped onto a 1-D Z-order (Morton) key, so proximity
//! queries become range scans over a sorted, sharded key layout. Exactness
//! is restored by re-ranking candidates by true Vivaldi distance; a
//! brute-force oracle in the test suite proves the equivalence property on
//! random point sets, churn, and degenerate inputs.
//!
//! Determinism: the crate reads no clock and draws no randomness; query
//! results are a pure function of the sequence of updates. Iteration that
//! could affect results runs over the sorted shards, never over hash maps.
//!
//! # Quickstart
//!
//! ```
//! use nc_query::{CoordinateIndex, QueryConfig};
//! use nc_vivaldi::Coordinate;
//!
//! let mut index = CoordinateIndex::new(QueryConfig::default()).unwrap();
//! index.update("helsinki", &Coordinate::new([12.0, -3.0, 40.0]).unwrap()).unwrap();
//! index.update("oregon", &Coordinate::new([-80.0, 22.0, 5.0]).unwrap()).unwrap();
//! index.update("sydney", &Coordinate::new([130.0, 95.0, -20.0]).unwrap()).unwrap();
//!
//! // A client at this coordinate fetches from its nearest replica.
//! let client = Coordinate::new([10.0, 0.0, 35.0]).unwrap();
//! let replica = index.nearest(&client).unwrap().unwrap();
//! assert_eq!(replica.id, "helsinki");
//! assert!(replica.distance_ms < 10.0);
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub mod curve;
pub mod handle;
pub mod index;

pub use handle::{QueryHandle, QueryPublisher};
pub use index::{ClusterSummary, CoordinateIndex, QueryMatch};

/// An invalid [`QueryConfig`] or query argument, reported by
/// [`QueryConfig::validate`] and the [`CoordinateIndex`] entry points —
/// the same typed-error validation idiom as `SimConfig`, `NodeConfig` and
/// `LinkModelConfig`.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The dimension count is outside `1..=8` (a Morton key holds at most
    /// eight 16-bit lanes).
    DimensionsOutOfRange(usize),
    /// The quantization half-extent is not positive and finite.
    BoundNotPositive(f64),
    /// The shard capacity is too small to amortise splits (minimum 8).
    ShardCapacityTooSmall(usize),
    /// A coordinate's dimensionality does not match the index.
    DimensionMismatch {
        /// The index's dimension count.
        expected: usize,
        /// The coordinate's dimension count.
        got: usize,
    },
    /// A coordinate has a NaN or infinite component or height.
    NonFiniteCoordinate,
    /// A coordinate has a negative height. Construction forbids them, but
    /// coordinate arithmetic (a negative scale) can still produce one; the
    /// k-NN search-box math relies on heights being non-negative.
    NegativeHeight,
    /// A cluster prefix length exceeds the key width.
    PrefixBitsOutOfRange {
        /// The requested prefix length.
        bits: u32,
        /// The key width (`16 × dimensions`).
        max: u32,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::DimensionsOutOfRange(d) => {
                write!(f, "dimensions must be in 1..=8, got {d}")
            }
            QueryError::BoundNotPositive(b) => {
                write!(f, "coordinate bound must be positive and finite, got {b}")
            }
            QueryError::ShardCapacityTooSmall(c) => {
                write!(f, "max shard entries must be at least 8, got {c}")
            }
            QueryError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "coordinate has {got} dimensions, the index has {expected}"
                )
            }
            QueryError::NonFiniteCoordinate => {
                write!(f, "coordinate has a non-finite component or height")
            }
            QueryError::NegativeHeight => {
                write!(f, "coordinate has a negative height")
            }
            QueryError::PrefixBitsOutOfRange { bits, max } => {
                write!(f, "cluster prefix of {bits} bits exceeds the {max}-bit key")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Tuning of a [`CoordinateIndex`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryConfig {
    /// Dimensionality of the indexed coordinates (must match the Vivaldi
    /// space; the paper's deployment uses 3).
    pub dimensions: usize,
    /// Half-extent of the quantization grid in milliseconds: components are
    /// clamped to `±coordinate_bound_ms` before quantization. Queries stay
    /// exact for out-of-range points (re-ranking uses true coordinates);
    /// only scan efficiency degrades at the clamped edges. The default of
    /// 30 000 ms comfortably contains any terrestrial RTT embedding.
    pub coordinate_bound_ms: f64,
    /// Shard split threshold: a shard splits in half when it outgrows this
    /// many entries, and merges with a neighbour when it falls below a
    /// quarter of it.
    pub max_shard_entries: usize,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            dimensions: 3,
            coordinate_bound_ms: 30_000.0,
            max_shard_entries: 512,
        }
    }
}

impl QueryConfig {
    /// Checks every invariant and returns the config unchanged when it is
    /// usable.
    ///
    /// # Errors
    ///
    /// Returns the first [`QueryError`] found: a dimension count outside
    /// `1..=8`, a non-positive quantization bound, or a shard capacity
    /// below 8.
    pub fn validate(self) -> Result<Self, QueryError> {
        if !(1..=curve::MAX_DIMENSIONS).contains(&self.dimensions) {
            return Err(QueryError::DimensionsOutOfRange(self.dimensions));
        }
        if !(self.coordinate_bound_ms.is_finite() && self.coordinate_bound_ms > 0.0) {
            return Err(QueryError::BoundNotPositive(self.coordinate_bound_ms));
        }
        if self.max_shard_entries < 8 {
            return Err(QueryError::ShardCapacityTooSmall(self.max_shard_entries));
        }
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(QueryConfig::default().validate().is_ok());
    }

    #[test]
    fn validate_reports_typed_errors() {
        let bad_dims = QueryConfig {
            dimensions: 9,
            ..QueryConfig::default()
        };
        assert_eq!(
            bad_dims.validate(),
            Err(QueryError::DimensionsOutOfRange(9))
        );
        let bad_bound = QueryConfig {
            coordinate_bound_ms: 0.0,
            ..QueryConfig::default()
        };
        assert_eq!(bad_bound.validate(), Err(QueryError::BoundNotPositive(0.0)));
        let bad_shard = QueryConfig {
            max_shard_entries: 4,
            ..QueryConfig::default()
        };
        assert_eq!(
            bad_shard.validate(),
            Err(QueryError::ShardCapacityTooSmall(4))
        );
        // Errors render as prose for operator-facing logs.
        assert!(QueryError::NonFiniteCoordinate
            .to_string()
            .contains("finite"));
    }
}
