//! The Z-order (Morton) space-filling curve over quantized coordinates.
//!
//! A coordinate is quantized to 16 bits per dimension on a fixed grid and
//! the per-dimension bits are interleaved into one `u128` key. Nearby
//! points in coordinate space tend to share key prefixes, so a sorted list
//! of keys serves spatial queries as 1-D range scans. The scan is kept
//! tight with the BIGMIN jump of Tropf & Herzog: when the scan reaches a
//! key inside the 1-D range but outside the query box, [`bigmin`] computes
//! the smallest key above it that re-enters the box, and the scan skips the
//! gap instead of filtering it entry by entry.
//!
//! Everything here is pure integer arithmetic on explicit inputs — no
//! floats, no clocks, no maps — so a key is a deterministic function of the
//! quantized cell alone.

/// Bits per dimension of the quantized grid (the grid is `2^16` cells
/// wide in every dimension).
pub const BITS_PER_DIM: u32 = 16;

/// Maximum number of coordinate dimensions a key can carry
/// (`8 × 16 = 128` bits fills the `u128`).
pub const MAX_DIMENSIONS: usize = 8;

/// Interleaves `cells` (one 16-bit cell index per dimension) into a Morton
/// key. Bit `b` of dimension `d` lands at position `b * dims + (dims-1-d)`,
/// so at equal bit level an earlier dimension is more significant.
///
/// `cells.len()` must be in `1..=MAX_DIMENSIONS`; cell values above
/// `2^16 - 1` are masked. The caller (the index) guarantees the length by
/// construction.
pub fn interleave(cells: &[u16]) -> u128 {
    let dims = cells.len() as u32;
    let mut key = 0u128;
    for (d, &cell) in cells.iter().enumerate() {
        let lane = dims - 1 - d as u32;
        let mut bits = cell;
        let mut b = 0u32;
        while bits != 0 {
            if bits & 1 != 0 {
                key |= 1u128 << (b * dims + lane);
            }
            bits >>= 1;
            b += 1;
        }
    }
    key
}

/// Recovers the per-dimension cell indices from a Morton key produced by
/// [`interleave`] with the same `dims`. `out` must hold exactly `dims`
/// slots; it is fully overwritten.
pub fn deinterleave(key: u128, dims: u32, out: &mut [u16]) {
    for slot in out.iter_mut() {
        *slot = 0;
    }
    let total = BITS_PER_DIM * dims;
    for p in 0..total {
        if key & (1u128 << p) != 0 {
            let b = p / dims;
            let lane = p % dims;
            let d = (dims - 1 - lane) as usize;
            if let Some(slot) = out.get_mut(d) {
                *slot |= 1 << b;
            }
        }
    }
}

/// Per-dimension bit masks of a `dims`-dimensional key: `masks[d]` selects
/// exactly the key bits carrying dimension `d`'s cell index. Because the
/// interleaving preserves bit significance within a dimension, masked keys
/// compare like the cell values themselves: `cellₔ(a) < cellₔ(b)` iff
/// `a & masks[d] < b & masks[d]`. The scan loop uses this for in-box tests
/// without deinterleaving every entry.
pub fn dimension_masks(dims: u32) -> [u128; MAX_DIMENSIONS] {
    let mut masks = [0u128; MAX_DIMENSIONS];
    for p in 0..BITS_PER_DIM * dims {
        let d = (dims - 1 - p % dims) as usize;
        if let Some(mask) = masks.get_mut(d) {
            *mask |= 1u128 << p;
        }
    }
    masks
}

/// The mask of bits belonging to the same dimension as bit `p`, strictly
/// below `p`. `dim_mask` must be the [`dimension_masks`] entry for `p`'s
/// dimension.
fn lower_same_dim(p: u32, dim_mask: u128) -> u128 {
    dim_mask & ((1u128 << p) - 1)
}

/// `z` with bit `p` forced to 1 and the lower bits of `p`'s dimension
/// forced to 0 — the smallest value of that dimension whose bit `p` is set,
/// other dimensions untouched.
fn load_min(z: u128, p: u32, dim_mask: u128) -> u128 {
    (z & !lower_same_dim(p, dim_mask)) | (1u128 << p)
}

/// `z` with bit `p` forced to 0 and the lower bits of `p`'s dimension
/// forced to 1 — the largest value of that dimension whose bit `p` is
/// clear, other dimensions untouched.
fn load_max(z: u128, p: u32, dim_mask: u128) -> u128 {
    (z & !(1u128 << p)) | lower_same_dim(p, dim_mask)
}

/// BIGMIN (Tropf & Herzog 1981): the smallest Morton key strictly greater
/// than `zcode` whose cell lies inside the axis-aligned box spanned by the
/// corner keys `zmin` and `zmax`. Returns `None` when no in-box key above
/// `zcode` exists. `masks` must be [`dimension_masks`]`(dims)`, precomputed
/// by the caller so a scan's many jumps share one mask table.
///
/// The scan loop uses this to jump over key-range gaps that the box does
/// not intersect: sorted keys in `(zcode, bigmin)` are all outside the box.
pub fn bigmin(
    zcode: u128,
    mut zmin: u128,
    mut zmax: u128,
    dims: u32,
    masks: &[u128; MAX_DIMENSIONS],
) -> Option<u128> {
    let mut result: Option<u128> = None;
    let total = BITS_PER_DIM * dims;
    let total_mask = if total >= 128 {
        u128::MAX
    } else {
        (1u128 << total) - 1
    };
    // Positions where all three keys agree are no-ops in the case analysis,
    // so walk only the differing bits (typically a handful of the 128),
    // highest first, re-deriving the set after each corner adjustment.
    let mut diff = ((zcode ^ zmin) | (zcode ^ zmax)) & total_mask;
    while diff != 0 {
        let p = 127 - diff.leading_zeros();
        let bit = 1u128 << p;
        let dim_mask = masks
            .get((dims - 1 - p % dims) as usize)
            .copied()
            .unwrap_or(0);
        match (zcode & bit != 0, zmin & bit != 0, zmax & bit != 0) {
            (false, false, true) => {
                result = Some(load_min(zmin, p, dim_mask));
                zmax = load_max(zmax, p, dim_mask);
            }
            (false, true, true) => return Some(zmin),
            (true, false, false) => return result,
            (true, false, true) => {
                zmin = load_min(zmin, p, dim_mask);
            }
            // min bit set while max bit clear would mean an inverted box in
            // this dimension's prefix; unreachable for well-formed corners.
            (_, true, false) => return result,
            // All-equal triples cannot carry a set `diff` bit.
            (false, false, false) | (true, true, true) => {}
        }
        diff = ((zcode ^ zmin) | (zcode ^ zmax)) & (bit - 1);
    }
    // zcode itself lies inside the box: the next in-box key is whatever the
    // case analysis recorded (or none, when zcode >= every in-box key).
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleave_round_trips() {
        for dims in 1..=MAX_DIMENSIONS {
            let cells: Vec<u16> = (0..dims).map(|d| (d as u16 + 1) * 1000 + 7).collect();
            let key = interleave(&cells);
            let mut back = vec![0u16; dims];
            deinterleave(key, dims as u32, &mut back);
            assert_eq!(back, cells, "dims={dims}");
        }
    }

    #[test]
    fn interleave_is_monotone_per_dimension() {
        // Growing one dimension while the others stay fixed grows the key.
        let mut cells = [5u16, 9, 200];
        let low = interleave(&cells);
        cells[1] += 1;
        assert!(interleave(&cells) > low);
    }

    #[test]
    fn one_dimensional_keys_are_the_identity() {
        for v in [0u16, 1, 255, 65535] {
            assert_eq!(interleave(&[v]), v as u128);
        }
    }

    #[test]
    fn bigmin_matches_a_brute_force_scan_on_small_grids() {
        // Exhaustive 2-D differential test on a 16×16 grid (4 bits used of
        // the 16 available): for every box and every *out-of-box* probe key
        // — the only keys the scan ever hands to BIGMIN — the result must
        // equal the smallest in-box key above the probe.
        let dims = 2u32;
        let boxes = [
            ([2u16, 3u16], [6u16, 12u16]),
            ([0, 0], [15, 15]),
            ([5, 5], [5, 5]),
            ([0, 7], [3, 9]),
        ];
        for (lo, hi) in boxes {
            let zmin = interleave(&lo);
            let zmax = interleave(&hi);
            let in_box = |z: u128| {
                let mut cells = [0u16; 2];
                deinterleave(z, dims, &mut cells);
                (lo[0]..=hi[0]).contains(&cells[0]) && (lo[1]..=hi[1]).contains(&cells[1])
            };
            let members: Vec<u128> = (0..=interleave(&[15, 15])).filter(|&z| in_box(z)).collect();
            for probe in 0..=interleave(&[15, 15]) {
                if in_box(probe) {
                    continue;
                }
                let expected = members.iter().copied().find(|&z| z > probe);
                let got = bigmin(probe, zmin, zmax, dims, &dimension_masks(dims));
                assert_eq!(got, expected, "probe={probe} box={lo:?}..{hi:?}");
            }
        }
    }
}
