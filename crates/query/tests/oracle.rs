//! The k-NN exactness contract (vendored proptest): for every random point
//! set, churn sequence and degenerate layout, [`CoordinateIndex::k_nearest`]
//! must return *byte-identical* rankings to a brute-force oracle that scans
//! all tracked nodes and sorts by `(exact distance, id)`. The index's
//! Z-order seeding, box pruning and BIGMIN jumps are pure accelerations —
//! any divergence from the oracle is a bug, never a trade-off.

use nc_query::{CoordinateIndex, QueryConfig, QueryMatch};
use nc_vivaldi::Coordinate;
use proptest::prelude::*;

const BOUND_MS: f64 = 1_000.0;

/// Decodes a word into a coordinate inside (and occasionally outside) the
/// quantization bound, exercising the clamped grid edges too.
fn decode_coordinate(word: u64) -> Coordinate {
    let axis = |shift: u32| {
        let raw = ((word >> shift) & 0xFFFF) as f64;
        // Spread over [-1.2, 1.2] × bound: ~17% of mass beyond the grid.
        (raw / 65_535.0 - 0.5) * 2.4 * BOUND_MS
    };
    let height = ((word >> 48) & 0x3FF) as f64 / 10.0;
    Coordinate::with_height([axis(0), axis(16), axis(32)], height).expect("finite components")
}

fn oracle(index: &CoordinateIndex<u32>, target: &Coordinate, k: usize) -> Vec<(u32, f64)> {
    let mut ranked: Vec<(u32, f64)> = index
        .iter()
        .map(|(id, coordinate)| (*id, target.distance(coordinate)))
        .collect();
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

fn flatten(matches: Vec<QueryMatch<u32>>) -> Vec<(u32, f64)> {
    matches.into_iter().map(|m| (m.id, m.distance_ms)).collect()
}

fn small_index(max_shard_entries: usize) -> CoordinateIndex<u32> {
    CoordinateIndex::new(QueryConfig {
        dimensions: 3,
        coordinate_bound_ms: BOUND_MS,
        max_shard_entries,
    })
    .expect("valid config")
}

proptest! {
    #[test]
    fn knn_equals_the_brute_force_oracle_on_random_point_sets(
        points in proptest::collection::vec(0u64..u64::MAX, 1..200),
        targets in proptest::collection::vec(0u64..u64::MAX, 1..8),
        k_word in 0usize..32,
    ) {
        // A tiny shard capacity forces multi-shard layouts (splits) even
        // for small populations, so the scan crosses shard boundaries.
        let mut index = small_index(8);
        for (id, word) in points.iter().enumerate() {
            index.update(id as u32, &decode_coordinate(*word)).expect("insert");
        }
        let k = 1 + k_word % (points.len() + 4);
        for word in &targets {
            let target = decode_coordinate(*word);
            let got = flatten(index.k_nearest(&target, k).expect("query"));
            prop_assert_eq!(&got, &oracle(&index, &target, k));
        }
        // Indexed nodes query for themselves too (distance-zero seeds).
        if let Some(word) = points.first() {
            let own = decode_coordinate(*word);
            let got = flatten(index.k_nearest(&own, k).expect("query"));
            prop_assert_eq!(&got, &oracle(&index, &own, k));
        }
    }

    #[test]
    fn knn_stays_exact_under_update_and_remove_churn(
        ops in proptest::collection::vec(0u64..u64::MAX, 1..300),
        target_word in 0u64..u64::MAX,
    ) {
        // Ids collide on purpose (mod 48): every third op removes, the rest
        // insert or move — the index sees the full update/remove life cycle
        // with shard splits and merges along the way.
        let mut index = small_index(8);
        for op in &ops {
            let id = (op % 48) as u32;
            if op % 3 == 0 {
                index.remove(&id);
            } else {
                index.update(id, &decode_coordinate(op.rotate_left(17))).expect("upsert");
            }
        }
        let target = decode_coordinate(target_word);
        for k in [1usize, 3, 16, 64] {
            let got = flatten(index.k_nearest(&target, k).expect("query"));
            prop_assert_eq!(&got, &oracle(&index, &target, k));
        }
    }

    #[test]
    fn knn_handles_degenerate_populations(
        population in 1usize..60,
        colocated_word in 0u64..u64::MAX,
        target_word in 0u64..u64::MAX,
        k_word in 0usize..8,
    ) {
        // All-colocated: every node quantizes to the same Z-order cell, so
        // ranking degenerates to pure id tie-breaking.
        let mut colocated = small_index(8);
        let spot = decode_coordinate(colocated_word);
        for id in 0..population as u32 {
            colocated.update(id, &spot).expect("insert");
        }
        let target = decode_coordinate(target_word);
        let k = 1 + k_word;
        let got = flatten(colocated.k_nearest(&target, k).expect("query"));
        let expected: Vec<(u32, f64)> = (0..population.min(k) as u32)
            .map(|id| (id, target.distance(&spot)))
            .collect();
        prop_assert_eq!(&got, &expected);

        // Single-node index: always the unique answer, any k.
        let mut single = small_index(8);
        single.update(7, &spot).expect("insert");
        let got = flatten(single.k_nearest(&target, k).expect("query"));
        prop_assert_eq!(got, vec![(7u32, target.distance(&spot))]);
    }
}
