//! Fixture: false-positive traps. This file must produce ZERO diagnostics:
//! every banned name below lives in a string, a raw string, a comment, or
//! is a lookalike token (lifetime, longer identifier).
//!
//! Doc prose may even say `HashMap::new()` or `.unwrap()` freely.

/* Block comments too: Instant::now(), SystemTime, thread_rng().
   /* Nested blocks stay comments: unsafe { HashMap::new() } */
   Still inside the outer comment: .expect("boom") */

fn traps<'a>(label: &'a str) -> String {
    let plain = "call .unwrap() then HashMap::new() at Instant::now()";
    let raw = r#"rand::random() and "quoted" SystemTime inside a raw string"#;
    let fenced = r##"thread_rng() behind a # fence: "#..."# stays raw"##;
    let byte = b"unsafe { } in a byte string";
    let ch = 'u'; // the char 'u' is not the start of `unwrap`
    let lookalike_unwrap_or = Some(1).unwrap_or(0);
    // `expects` and `unwrapped` are different identifiers than the banned ones.
    let expects_unwrapped = lookalike_unwrap_or + byte.len() + ch as usize;
    format!("{label}{plain}{raw}{fenced}{expects_unwrapped}")
}
