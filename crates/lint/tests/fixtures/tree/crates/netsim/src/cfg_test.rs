//! Fixture: in-file `#[cfg(test)]` modules get the same exemption as
//! `tests/` directories. The library half above the module stays covered.

fn library_half() -> u32 {
    1
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn unit_tests_may_use_std_maps_and_clocks() {
        let started = Instant::now();
        let mut map = HashMap::new();
        map.insert(super::library_half(), started.elapsed());
        assert!(map.get(&1).unwrap().as_nanos() < u128::MAX);
    }
}
