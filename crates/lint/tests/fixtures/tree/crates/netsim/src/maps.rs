//! Fixture: `det-map` — std maps in a deterministic crate's library code.

use std::collections::HashMap;
use std::collections::HashSet;

fn unordered() -> usize {
    let map: HashMap<u32, u32> = HashMap::new();
    let set: HashSet<u32> = HashSet::new();
    map.len() + set.len()
}
