//! Fixture: the suppression pragma protocol itself.

// nc-lint: allow(det-map) — fixture: a justified pragma suppresses the
// diagnostic on the next code line, even across a continuation comment.
use std::collections::HashMap;

// nc-lint: allow(det-map)
use std::collections::HashSet;

// nc-lint: allow(not-a-rule) — pragmas must name a shipped rule.
fn unknown_rule() {}

fn leftovers() -> usize {
    // A reasonless pragma suppresses nothing, so the next line is flagged
    // AND the pragma two uses above is flagged for the missing reason.
    HashMap::<u32, u32>::new().len() + HashSet::<u32>::new().len()
}
