//! Fixture: `det-wallclock` — real time and ambient RNG in simulation code.

use std::time::{Instant, SystemTime};

fn wall_clock() -> f64 {
    let started = Instant::now();
    let _epoch = SystemTime::now();
    let mut rng = rand::thread_rng();
    let jitter: f64 = rand::random();
    started.elapsed().as_secs_f64() + rng.gen::<f64>() + jitter
}
