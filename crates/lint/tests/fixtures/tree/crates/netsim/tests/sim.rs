//! Fixture: `tests/` directories are exempt from the determinism and
//! panic rules (this file is even named `sim.rs` to prove the hot-path
//! scope does not reach into test targets).

use std::collections::HashMap;
use std::time::Instant;

#[test]
fn test_scaffolding_may_unwrap() {
    let started = Instant::now();
    let mut map = HashMap::new();
    map.insert("k", started.elapsed());
    let _ = map.get("k").unwrap();
}
