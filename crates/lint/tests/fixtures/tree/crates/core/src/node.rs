//! Fixture: `panic` — unwrap/expect and arithmetic indexing on the hot path.

fn hot_path(values: &[f64], cursor: usize) -> f64 {
    let first = values.first().unwrap();
    let second: f64 = "2.0".parse().expect("parses");
    let wrapped = values[cursor % values.len()];
    // bounds: cursor + 1 is reduced modulo len on the line below.
    let annotated = values[(cursor + 1) % values.len()];
    // nc-lint: allow(panic) — fixture proving a justified pragma suppresses.
    let suppressed = values[cursor * 2 % values.len()];
    first + second + wrapped + annotated + suppressed
}
