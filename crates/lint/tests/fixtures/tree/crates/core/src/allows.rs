//! Fixture: `allow-justify` — bare `#[allow(...)]` versus justified ones.

#[allow(dead_code)]
fn bare_allow() {}

#[allow(dead_code)] // fixture: a trailing justification satisfies the rule
fn justified_allow() {}

#[allow(
    dead_code,
    unused_variables
)] // fixture: multi-line attribute, justified on the closing-bracket line
fn multi_line_justified(unused: u32) {}
