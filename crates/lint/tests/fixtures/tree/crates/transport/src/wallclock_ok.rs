//! Fixture: crate scoping — `crates/transport` may read real clocks and
//! ambient RNG (no `det-wallclock` diagnostics here), but the `unsafe`
//! hygiene rule still applies everywhere: the block below has no
//! `// SAFETY:` comment and must be flagged.

use std::time::Instant;

fn deployment_clock() -> u128 {
    let started = Instant::now();
    let _seed: u64 = rand::random();
    let leaked = unsafe { *std::ptr::addr_of!(STATIC_COUNTER) };
    started.elapsed().as_nanos() + u128::from(leaked)
}

static STATIC_COUNTER: u64 = 0;
