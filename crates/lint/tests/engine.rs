//! End-to-end rule-engine tests: lint the checked-in fixture tree and
//! compare the full JSON report against a golden file, byte for byte.
//!
//! The fixture tree under `tests/fixtures/tree/` mimics the workspace
//! layout (`crates/<name>/src/...`) so crate-scoped rules fire exactly as
//! they do on the real tree. The golden file is the report's byte-identity
//! contract: any change to a rule, a message, or the sort order shows up
//! as a readable diff here.

use std::path::Path;

use nc_lint::diag::render_json;
use nc_lint::lint_tree;
use nc_lint::rules::lint_source;

fn fixture_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/tree")
}

#[test]
fn fixture_tree_matches_golden_json() {
    let (diags, checked) = lint_tree(&fixture_root(), &[]).expect("fixture tree lints");
    assert_eq!(checked, 9, "fixture tree should contain 9 .rs files");
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/expected.json");
    let golden = std::fs::read_to_string(&golden_path).expect("golden file reads");
    let rendered = render_json(&diags);
    assert_eq!(
        rendered, golden,
        "fixture diagnostics drifted from the golden JSON; \
         if the change is intentional, regenerate with \
         `cargo run -p nc-lint -- --json --root crates/lint/tests/fixtures/tree`"
    );
}

#[test]
fn fixture_tree_is_stable_across_runs() {
    let (first, _) = lint_tree(&fixture_root(), &[]).expect("first pass");
    let (second, _) = lint_tree(&fixture_root(), &[]).expect("second pass");
    assert_eq!(render_json(&first), render_json(&second));
}

#[test]
fn only_filter_restricts_rules() {
    let (diags, _) = lint_tree(&fixture_root(), &["det-map".to_string()]).expect("filtered pass");
    assert!(!diags.is_empty());
    assert!(diags.iter().all(|d| d.rule == "det-map"));
}

#[test]
fn trap_file_produces_zero_diagnostics() {
    let source = std::fs::read_to_string(fixture_root().join("crates/netsim/src/sim.rs"))
        .expect("trap fixture reads");
    let diags = lint_source("crates/netsim/src/sim.rs", &source);
    assert!(
        diags.is_empty(),
        "banned names inside strings/comments must not fire: {diags:?}"
    );
}

#[test]
fn test_targets_are_exempt() {
    let source = std::fs::read_to_string(fixture_root().join("crates/netsim/tests/sim.rs"))
        .expect("test fixture reads");
    let diags = lint_source("crates/netsim/tests/sim.rs", &source);
    assert!(diags.is_empty(), "tests/ dirs are exempt: {diags:?}");
}

#[test]
fn cfg_test_modules_are_exempt() {
    let source = std::fs::read_to_string(fixture_root().join("crates/netsim/src/cfg_test.rs"))
        .expect("cfg(test) fixture reads");
    let diags = lint_source("crates/netsim/src/cfg_test.rs", &source);
    assert!(
        diags.is_empty(),
        "#[cfg(test)] mod bodies are exempt: {diags:?}"
    );
}

#[test]
fn crate_scope_comes_from_the_path() {
    // The same wall-clock source is a violation in netsim but fine in transport.
    let source = "//! doc\nfn f() -> std::time::Instant { std::time::Instant::now() }\n";
    let in_netsim = lint_source("crates/netsim/src/lib.rs", source);
    let in_transport = lint_source("crates/transport/src/lib.rs", source);
    assert_eq!(in_netsim.len(), 1);
    assert_eq!(in_netsim[0].rule, "det-wallclock");
    assert!(in_transport.is_empty());
}

#[test]
fn hot_path_scope_is_per_file() {
    // .unwrap() is the panic rule's concern only in node.rs/sim.rs/shard.rs.
    let source = "//! doc\nfn f(v: &[u32]) -> u32 { *v.first().unwrap() }\n";
    let on_hot_path = lint_source("crates/core/src/node.rs", source);
    let elsewhere = lint_source("crates/core/src/filters.rs", source);
    assert_eq!(on_hot_path.len(), 1);
    assert_eq!(on_hot_path[0].rule, "panic");
    assert!(elsewhere.is_empty());
}

#[test]
fn pragma_on_same_line_suppresses() {
    let source = "//! doc\nuse std::collections::HashMap; // nc-lint: allow(det-map) — test reason here\nfn f() -> HashMap<u32, u32> { HashMap::new() } // nc-lint: allow(det-map) — test reason here\n";
    let diags = lint_source("crates/netsim/src/lib.rs", source);
    assert!(diags.is_empty(), "same-line pragmas suppress: {diags:?}");
}
