//! A hand-rolled Rust lexer, just deep enough to lint safely.
//!
//! The point of lexing (rather than regexing over source text) is precision
//! about *where code stops and prose begins*: `HashMap` inside a string
//! literal, a doc comment, or a nested block comment is not a determinism
//! violation, and `'a` in `fn f<'a>()` is a lifetime, not an unterminated
//! char literal. The lexer therefore handles, correctly:
//!
//! - line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), which Rust allows and naive scanners get wrong;
//! - string literals with escapes, byte strings, C strings, and raw strings
//!   with an arbitrary hash fence (`r#"..."#`, `br##"..."##`, ...);
//! - raw identifiers (`r#type`) versus raw strings (`r#"..."`);
//! - lifetimes (`'a`, `'_`, `'static`) versus char literals (`'a'`, `'\''`).
//!
//! Everything else becomes an [`Tok::Ident`], a numeric literal, or a
//! single-character [`Tok::Punct`]; rules match on short token sequences.
//! Comments are kept out of the token stream but preserved (with their line
//! spans) so rules can check for `// SAFETY:` notes, justification
//! comments, and `nc-lint: allow(...)` suppression pragmas.

/// One lexed token kind. Literal contents are deliberately dropped: no rule
/// looks *inside* a string, which is exactly what makes string/comment
/// false positives impossible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`HashMap`, `unsafe`, `fn`, `r#type`).
    Ident(String),
    /// A lifetime such as `'a` or `'static` (without the quote).
    Lifetime(String),
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A string literal of any flavor (plain, byte, C, raw).
    StrLit,
    /// A numeric literal.
    NumLit,
    /// A single punctuation character (`.`, `[`, `:`, ...).
    Punct(char),
}

/// A token plus its 1-indexed source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-indexed line of the token's first character.
    pub line: u32,
    /// 1-indexed column of the token's first character.
    pub col: u32,
}

/// A comment (line or block) with the line span it covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    /// 1-indexed first line.
    pub start_line: u32,
    /// 1-indexed last line (equal to `start_line` for line comments).
    pub end_line: u32,
}

/// The result of lexing one file: code tokens and comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        if byte == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(byte)
    }
}

fn is_ident_start(byte: u8) -> bool {
    byte.is_ascii_alphabetic() || byte == b'_' || byte >= 0x80
}

fn is_ident_continue(byte: u8) -> bool {
    byte.is_ascii_alphanumeric() || byte == b'_' || byte >= 0x80
}

/// True for the prefixes that may introduce a string literal (`b"..."`,
/// `r"..."`, `br#"..."#`, `c"..."`, `cr"..."`).
fn is_string_prefix(ident: &str) -> bool {
    matches!(ident, "b" | "r" | "c" | "br" | "cr")
}

/// Lexes `source` into tokens and comments. The lexer never fails: on a
/// malformed construct (unterminated string, stray byte) it consumes one
/// byte and continues, which is the right behavior for a linter that must
/// not crash on the very file it is diagnosing.
pub fn lex(source: &str) -> Lexed {
    let mut cursor = Cursor::new(source);
    let mut out = Lexed::default();

    while let Some(byte) = cursor.peek() {
        let line = cursor.line;
        let col = cursor.col;
        match byte {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cursor.bump();
            }
            b'/' if cursor.peek_at(1) == Some(b'/') => {
                let mut text = String::new();
                while let Some(c) = cursor.peek() {
                    if c == b'\n' {
                        break;
                    }
                    text.push(cursor.bump().unwrap_or(b' ') as char);
                }
                out.comments.push(Comment {
                    text,
                    start_line: line,
                    end_line: line,
                });
            }
            b'/' if cursor.peek_at(1) == Some(b'*') => {
                let mut text = String::new();
                let mut depth = 0usize;
                while let Some(c) = cursor.peek() {
                    if c == b'/' && cursor.peek_at(1) == Some(b'*') {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        cursor.bump();
                        cursor.bump();
                    } else if c == b'*' && cursor.peek_at(1) == Some(b'/') {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        cursor.bump();
                        cursor.bump();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(cursor.bump().unwrap_or(b' ') as char);
                    }
                }
                out.comments.push(Comment {
                    text,
                    start_line: line,
                    end_line: cursor.line,
                });
            }
            b'"' => {
                consume_string(&mut cursor);
                out.tokens.push(Token {
                    tok: Tok::StrLit,
                    line,
                    col,
                });
            }
            b'\'' => {
                lex_quote(&mut cursor, &mut out, line, col);
            }
            _ if byte.is_ascii_digit() => {
                consume_number(&mut cursor);
                out.tokens.push(Token {
                    tok: Tok::NumLit,
                    line,
                    col,
                });
            }
            _ if is_ident_start(byte) => {
                lex_ident_or_string(&mut cursor, &mut out, line, col);
            }
            _ => {
                cursor.bump();
                out.tokens.push(Token {
                    tok: Tok::Punct(byte as char),
                    line,
                    col,
                });
            }
        }
    }
    out
}

/// Consumes a plain (escaped) string or char body after the opening quote
/// has NOT yet been consumed; `quote` selects `"` or `'`.
fn consume_delimited(cursor: &mut Cursor<'_>, quote: u8) {
    cursor.bump(); // opening quote
    while let Some(c) = cursor.peek() {
        if c == b'\\' {
            cursor.bump();
            cursor.bump();
        } else if c == quote {
            cursor.bump();
            break;
        } else {
            cursor.bump();
        }
    }
}

fn consume_string(cursor: &mut Cursor<'_>) {
    consume_delimited(cursor, b'"');
}

/// Consumes a raw string starting at `r`/`br`/`cr` whose prefix has already
/// been consumed and whose next characters are `#* "`. Returns after the
/// matching fence.
fn consume_raw_string(cursor: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cursor.peek() == Some(b'#') {
        hashes += 1;
        cursor.bump();
    }
    cursor.bump(); // opening quote
    'scan: while let Some(c) = cursor.bump() {
        if c == b'"' {
            for ahead in 0..hashes {
                if cursor.peek_at(ahead) != Some(b'#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cursor.bump();
            }
            break;
        }
    }
}

/// `'` is ambiguous: lifetime (`'a`), labeled loop (`'outer:`), or char
/// literal (`'a'`, `'\n'`). Rust's own rule: after the quote, an identifier
/// not followed by another `'` is a lifetime.
fn lex_quote(cursor: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    if cursor.peek_at(1).map(is_ident_start).unwrap_or(false) {
        // Look past the identifier: a closing quote right after makes it a
        // char literal like 'a'; anything else is a lifetime.
        let mut ahead = 2;
        while cursor
            .peek_at(ahead)
            .map(is_ident_continue)
            .unwrap_or(false)
        {
            ahead += 1;
        }
        if cursor.peek_at(ahead) != Some(b'\'') {
            cursor.bump(); // the quote
            let mut name = String::new();
            while cursor.peek().map(is_ident_continue).unwrap_or(false) {
                name.push(cursor.bump().unwrap_or(b'_') as char);
            }
            out.tokens.push(Token {
                tok: Tok::Lifetime(name),
                line,
                col,
            });
            return;
        }
    }
    consume_delimited(cursor, b'\'');
    out.tokens.push(Token {
        tok: Tok::CharLit,
        line,
        col,
    });
}

fn consume_number(cursor: &mut Cursor<'_>) {
    // Digits, underscores, radix/exponent letters, plus a fractional part.
    // We never inspect numeric values, so lexing loosely is fine as long as
    // we do not swallow a `..` range operator.
    while cursor.peek().map(is_ident_continue).unwrap_or(false) {
        cursor.bump();
    }
    if cursor.peek() == Some(b'.')
        && cursor
            .peek_at(1)
            .map(|c| c.is_ascii_digit())
            .unwrap_or(false)
    {
        cursor.bump();
        while cursor.peek().map(is_ident_continue).unwrap_or(false) {
            cursor.bump();
        }
    }
}

/// An identifier, unless it turns out to be a string prefix (`r"`, `br#"`,
/// `b"`) or a raw identifier (`r#type`).
fn lex_ident_or_string(cursor: &mut Cursor<'_>, out: &mut Lexed, line: u32, col: u32) {
    let mut ident = String::new();
    while cursor.peek().map(is_ident_continue).unwrap_or(false) {
        ident.push(cursor.bump().unwrap_or(b'_') as char);
    }
    match cursor.peek() {
        Some(b'"') if is_string_prefix(&ident) => {
            if ident.contains('r') {
                consume_raw_string(cursor);
            } else {
                consume_string(cursor);
            }
            out.tokens.push(Token {
                tok: Tok::StrLit,
                line,
                col,
            });
        }
        Some(b'\'') if ident == "b" => {
            // Byte literal b'x'.
            consume_delimited(cursor, b'\'');
            out.tokens.push(Token {
                tok: Tok::CharLit,
                line,
                col,
            });
        }
        Some(b'#') if is_string_prefix(&ident) && ident.contains('r') => {
            // Either a raw string fence (r#"..."#) or a raw identifier
            // (r#type). Count the hashes and look at what follows.
            let mut hashes = 0usize;
            while cursor.peek_at(hashes) == Some(b'#') {
                hashes += 1;
            }
            if cursor.peek_at(hashes) == Some(b'"') {
                consume_raw_string(cursor);
                out.tokens.push(Token {
                    tok: Tok::StrLit,
                    line,
                    col,
                });
            } else if ident == "r" && hashes == 1 {
                cursor.bump(); // the '#'
                let mut raw = String::new();
                while cursor.peek().map(is_ident_continue).unwrap_or(false) {
                    raw.push(cursor.bump().unwrap_or(b'_') as char);
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(raw),
                    line,
                    col,
                });
            } else {
                out.tokens.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                    col,
                });
            }
        }
        _ => {
            out.tokens.push(Token {
                tok: Tok::Ident(ident),
                line,
                col,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(source: &str) -> Vec<String> {
        lex(source)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(name) => Some(name),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        let source = r####"let x = r#"HashMap::new() and .unwrap()"#; let y = HashMap;"####;
        assert_eq!(idents(source), vec!["let", "x", "let", "y", "HashMap"]);
    }

    #[test]
    fn raw_strings_with_multiple_hashes_and_inner_fences() {
        let source = "let x = r##\"a \"# quote\"##; Instant";
        assert_eq!(idents(source), vec!["let", "x", "Instant"]);
    }

    #[test]
    fn byte_and_c_string_prefixes_are_strings() {
        let source = "b\"unsafe\"; br#\"unsafe\"#; c\"unsafe\"; cr#\"unsafe\"#;";
        let lexed = lex(source);
        assert!(lexed
            .tokens
            .iter()
            .all(|t| !matches!(&t.tok, Tok::Ident(name) if name == "unsafe")));
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::StrLit).count(),
            4
        );
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let source = "before /* outer /* inner unsafe */ still comment */ after";
        let lexed = lex(source);
        assert_eq!(idents(source), vec!["before", "after"]);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("inner unsafe"));
    }

    #[test]
    fn block_comment_line_span_is_recorded() {
        let source = "/* one\ntwo\nthree */\nident";
        let lexed = lex(source);
        assert_eq!(lexed.comments[0].start_line, 1);
        assert_eq!(lexed.comments[0].end_line, 3);
        assert_eq!(lexed.tokens[0].line, 4);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let source = "fn f<'a>(x: &'a str) -> &'static str { 'outer: loop { break 'outer; } }";
        let lifetimes: Vec<String> = lex(source)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Lifetime(name) => Some(name),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static", "outer", "outer"]);
    }

    #[test]
    fn char_literals_including_escaped_quote() {
        let source = r"let a = 'x'; let b = '\''; let c = '\\'; let d = '\u{1F600}';";
        let lexed = lex(source);
        assert_eq!(
            lexed
                .tokens
                .iter()
                .filter(|t| t.tok == Tok::CharLit)
                .count(),
            4
        );
        assert!(lexed
            .tokens
            .iter()
            .all(|t| !matches!(t.tok, Tok::Lifetime(_))));
    }

    #[test]
    fn strings_with_escapes_hide_contents() {
        let source = r#"let s = "say \"HashMap\" loudly"; thread_rng"#;
        assert_eq!(idents(source), vec!["let", "s", "thread_rng"]);
    }

    #[test]
    fn line_comment_positions() {
        let source = "x // trailing HashMap\ny";
        let lexed = lex(source);
        assert_eq!(idents(source), vec!["x", "y"]);
        assert_eq!(lexed.comments[0].start_line, 1);
        assert!(lexed.comments[0].text.contains("HashMap"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let source = "for i in 0..10 { a[i] }";
        let lexed = lex(source);
        let puncts: Vec<char> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(puncts.iter().filter(|c| **c == '.').count(), 2);
    }

    #[test]
    fn float_literals_lex_as_one_number() {
        let lexed = lex("let x = 1.5e3 + 0xff_u32;");
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.tok == Tok::NumLit).count(),
            2
        );
    }
}
