//! Diagnostics and their two renderings (human text and machine JSON).
//!
//! The text format is the workspace's shared CI diagnostic contract, kept
//! in lockstep with `bench_report --check` so one log-scraping pattern
//! covers every gate:
//!
//! ```text
//! <tool>: error[<rule>]: <subject>: <message>
//! <tool> --check: FAIL (<n> diagnostics)   # or: OK (<n> ... checked)
//! ```
//!
//! For `nc-lint` the subject is `path:line:col`; for `bench_report` it is
//! the bench name. Scrape with `^\w[\w-]*: error\[[a-z-]+\]: `.

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-indexed line.
    pub line: u32,
    /// 1-indexed column.
    pub col: u32,
    /// Stable rule id (see [`crate::rules::RULES`]).
    pub rule: String,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// The shared-format diagnostic line.
    pub fn render_text(&self) -> String {
        format!(
            "nc-lint: error[{}]: {}:{}:{}: {}",
            self.rule, self.path, self.line, self.col, self.message
        )
    }
}

/// Renders the full diagnostic list as pretty-printed JSON (an array of
/// objects), with no serializer dependency: the linter must stay
/// dependency-free, and the shape is flat enough to emit by hand.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (index, diag) in diagnostics.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\n    \"path\": \"{}\",", escape(&diag.path)));
        out.push_str(&format!("\n    \"line\": {},", diag.line));
        out.push_str(&format!("\n    \"col\": {},", diag.col));
        out.push_str(&format!("\n    \"rule\": \"{}\",", escape(&diag.rule)));
        out.push_str(&format!("\n    \"message\": \"{}\"", escape(&diag.message)));
        out.push_str("\n  }");
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            path: "crates/netsim/src/sim.rs".to_string(),
            line: 50,
            col: 5,
            rule: "det-map".to_string(),
            message: "std HashMap banned".to_string(),
        }
    }

    #[test]
    fn text_format_matches_shared_contract() {
        assert_eq!(
            sample().render_text(),
            "nc-lint: error[det-map]: crates/netsim/src/sim.rs:50:5: std HashMap banned"
        );
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        let mut diag = sample();
        diag.message = "say \"hi\" \\ done".to_string();
        let json = render_json(&[diag]);
        assert!(json.contains("say \\\"hi\\\" \\\\ done"));
    }

    #[test]
    fn empty_list_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }
}
