//! Workspace file discovery.
//!
//! Collects every `.rs` file under the root, skipping directories that are
//! not the workspace's own source: `vendor/` (offline stand-ins with their
//! own style), `target/`, VCS metadata, and any `fixtures/` directory —
//! lint-rule fixtures *deliberately* violate the rules, and must be
//! reachable only by pointing `--root` directly at them.

use std::fs;
use std::path::Path;

/// Directory names never descended into.
const SKIPPED_DIRS: &[&str] = &["vendor", "target", "fixtures"];

/// Returns the workspace-relative (forward-slash) paths of all lintable
/// `.rs` files under `root`, sorted for deterministic diagnostic order.
pub fn rust_files(root: &Path) -> std::io::Result<Vec<String>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name.starts_with('.') || SKIPPED_DIRS.contains(&name.as_ref()) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(relative_slash(root, &path));
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative_slash(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_list_covers_vendor_target_and_fixtures() {
        for dir in ["vendor", "target", "fixtures"] {
            assert!(SKIPPED_DIRS.contains(&dir));
        }
    }
}
