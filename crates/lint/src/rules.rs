//! The rule engine: the repo's reproducibility contracts, made mechanical.
//!
//! Every rule here encodes an invariant that DETERMINISM.md states in prose
//! and the regression suites defend after the fact; the linter rejects the
//! violation at the source instead. Rules are scoped by *crate class*
//! (derived from the file's path inside the workspace) so that, e.g., the
//! wall-clock ban applies to the simulation stack but not to the real-time
//! transport layer, and test code is exempt where the contract only
//! concerns shipped library paths.
//!
//! Suppression is deliberate and auditable: only an inline
//! `// nc-lint: allow(<rule>) — <reason>` pragma on the same line or the
//! line directly above silences a diagnostic, and a pragma without a
//! written reason is itself a diagnostic.

use std::collections::HashSet;

use crate::diag::Diagnostic;
use crate::lexer::{lex, Comment, Lexed, Tok, Token};

/// Crates whose library code must be deterministic: no unordered std maps,
/// no wall-clock reads, no ambient RNG. (Directory names under `crates/`.)
const DETERMINISTIC_CRATES: &[&str] = &[
    "core", "netsim", "vivaldi", "filters", "stats", "change", "proto", "query",
];

/// Crates allowed to read real clocks and ambient randomness: the UDP
/// deployment layer and the wall-clock benchmark harness.
const WALLCLOCK_CRATES: &[&str] = &["transport", "bench"];

/// Engine hot-path modules held to the no-panic rule.
const HOT_PATH_FILES: &[&str] = &["node.rs", "sim.rs", "shard.rs", "index.rs", "curve.rs"];

/// How many lines above an `unsafe` token a `// SAFETY:` comment may sit.
const SAFETY_WINDOW: u32 = 5;

/// How many lines above an arithmetic slice index a `// bounds:` note may
/// sit.
const BOUNDS_WINDOW: u32 = 3;

/// One lint rule's identity and rationale, for `--list`.
pub struct RuleInfo {
    /// Stable rule id, used in diagnostics and suppression pragmas.
    pub id: &'static str,
    /// One-line description of what the rule enforces and where.
    pub description: &'static str,
}

/// The shipped rule set.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "det-map",
        description: "no std HashMap/HashSet in deterministic crates (core, netsim, vivaldi, filters, stats, change, proto, query) — use stable_nc::FxHashMap or a sorted structure",
    },
    RuleInfo {
        id: "det-wallclock",
        description: "no Instant::now / SystemTime / thread_rng / rand::random outside crates/transport and crates/bench — simulation time and seeded RNG only",
    },
    RuleInfo {
        id: "panic",
        description: "no unwrap/expect and no un-annotated arithmetic slice index in engine hot-path modules (node.rs, sim.rs, shard.rs, index.rs, curve.rs library code; tests exempt)",
    },
    RuleInfo {
        id: "unsafe-comment",
        description: "every `unsafe` block/fn/impl needs a `// SAFETY:` comment on the same or preceding lines",
    },
    RuleInfo {
        id: "allow-justify",
        description: "every #[allow(...)] needs a trailing justification comment",
    },
    RuleInfo {
        id: "pragma",
        description: "nc-lint suppression pragmas must name a known rule and carry a written reason",
    },
];

/// True iff `id` names a shipped rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|rule| rule.id == id)
}

/// Where a file sits in the workspace, for rule scoping.
struct FileClass {
    crate_name: String,
    file_name: String,
    /// Under a `tests/`, `benches/` or `examples/` directory.
    is_test_target: bool,
}

fn classify(rel_path: &str) -> FileClass {
    let components: Vec<&str> = rel_path.split('/').collect();
    let crate_name = match components.first() {
        Some(&"crates") if components.len() > 1 => components[1].to_string(),
        _ => "workspace-root".to_string(),
    };
    let file_name = components.last().unwrap_or(&"").to_string();
    let is_test_target = components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"));
    FileClass {
        crate_name,
        file_name,
        is_test_target,
    }
}

/// A parsed `// nc-lint: allow(rule, ...) — reason` suppression.
struct Pragma {
    rules: Vec<String>,
    line: u32,
    has_reason: bool,
}

const PRAGMA_MARKER: &str = "nc-lint: allow(";

/// Doc comments are rendered prose, not lint directives: a doc sentence
/// *describing* the pragma syntax must neither suppress anything nor be
/// held to the pragma grammar.
fn is_doc_comment(text: &str) -> bool {
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Merges runs of contiguous standalone `//` line comments into logical
/// blocks, so a pragma written across several comment lines covers the code
/// line the whole block precedes (its `end_line` becomes the block's last
/// line). A comment trailing code stays its own block — it is anchored to
/// the line it annotates, not to whatever comment happens to follow.
fn comment_blocks(comments: &[Comment], code_lines: &HashSet<u32>) -> Vec<Comment> {
    let mut blocks: Vec<Comment> = Vec::new();
    for comment in comments {
        let continues_block = !is_doc_comment(&comment.text)
            && comment.text.starts_with("//")
            && !code_lines.contains(&comment.start_line)
            && blocks.last().is_some_and(|prev| {
                prev.text.starts_with("//")
                    && !is_doc_comment(&prev.text)
                    && !code_lines.contains(&prev.end_line)
                    && prev.end_line + 1 == comment.start_line
            });
        if continues_block {
            if let Some(prev) = blocks.last_mut() {
                prev.text.push('\n');
                prev.text.push_str(&comment.text);
                prev.end_line = comment.end_line;
                continue;
            }
        }
        blocks.push(comment.clone());
    }
    blocks
}

fn parse_pragmas(lexed: &Lexed) -> Vec<Pragma> {
    let code_lines: HashSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
    let mut pragmas = Vec::new();
    for comment in &comment_blocks(&lexed.comments, &code_lines) {
        if is_doc_comment(&comment.text) {
            continue;
        }
        // A merged block can hold several pragmas (one comment line each).
        for (start, _) in comment.text.match_indices(PRAGMA_MARKER) {
            let rest = &comment.text[start + PRAGMA_MARKER.len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rules = rest[..close]
                .split(',')
                .map(|rule| rule.trim().to_string())
                .filter(|rule| !rule.is_empty())
                .collect();
            // The reason is whatever follows the closing paren, minus
            // separator punctuation, up to the next pragma in the same
            // block. Requiring a handful of characters keeps "— ." from
            // counting as a justification.
            let tail = &rest[close + 1..];
            let tail = &tail[..tail.find(PRAGMA_MARKER).unwrap_or(tail.len())];
            let reason: String = tail
                .trim_start_matches(|c: char| c.is_whitespace() || "—–-:,.".contains(c))
                .trim()
                .to_string();
            pragmas.push(Pragma {
                rules,
                line: comment.end_line,
                has_reason: reason.chars().count() >= 5,
            });
        }
    }
    pragmas
}

/// Line ranges of `#[cfg(test)] mod ... { ... }` blocks, so in-file unit
/// test modules get the same exemptions as `tests/` directories.
fn cfg_test_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let tokens = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !is_punct(tokens.get(i), '#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if is_punct(tokens.get(j), '!') {
            j += 1;
        }
        if !is_punct(tokens.get(j), '[') {
            i += 1;
            continue;
        }
        // Scan the attribute body for `cfg` ... `test` and find its `]`.
        let mut depth = 0usize;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < tokens.len() {
            match &tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                Tok::Ident(name) if name == "cfg" => saw_cfg = true,
                Tok::Ident(name) if name == "test" => saw_test = true,
                _ => {}
            }
            j += 1;
        }
        if saw_cfg && saw_test {
            // Skip any further attributes between #[cfg(test)] and the item.
            let mut k = j + 1;
            while is_punct(tokens.get(k), '#') {
                let mut inner = k + 1;
                let mut inner_depth = 0usize;
                while inner < tokens.len() {
                    match tokens[inner].tok {
                        Tok::Punct('[') => inner_depth += 1,
                        Tok::Punct(']') => {
                            inner_depth -= 1;
                            if inner_depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    inner += 1;
                }
                k = inner + 1;
            }
            if is_ident(tokens.get(k), "mod") {
                // Find the opening brace, then its match.
                let mut open = k + 1;
                while open < tokens.len() && !matches!(tokens[open].tok, Tok::Punct('{')) {
                    open += 1;
                }
                let mut brace_depth = 0usize;
                let mut close = open;
                while close < tokens.len() {
                    match tokens[close].tok {
                        Tok::Punct('{') => brace_depth += 1,
                        Tok::Punct('}') => {
                            brace_depth -= 1;
                            if brace_depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    close += 1;
                }
                if open < tokens.len() {
                    let end = tokens.get(close).map(|t| t.line).unwrap_or(u32::MAX);
                    spans.push((tokens[i].line, end));
                }
            }
        }
        i = j + 1;
    }
    spans
}

fn in_spans(spans: &[(u32, u32)], line: u32) -> bool {
    spans
        .iter()
        .any(|(start, end)| line >= *start && line <= *end)
}

fn is_punct(token: Option<&Token>, c: char) -> bool {
    matches!(token, Some(t) if t.tok == Tok::Punct(c))
}

fn is_ident(token: Option<&Token>, name: &str) -> bool {
    matches!(token, Some(t) if matches!(&t.tok, Tok::Ident(n) if n == name))
}

fn ident_name(token: Option<&Token>) -> Option<&str> {
    match token {
        Some(Token {
            tok: Tok::Ident(name),
            ..
        }) => Some(name.as_str()),
        _ => None,
    }
}

/// Is there a comment containing `needle` ending within `window` lines
/// above `line` (or starting on `line` itself, for trailing notes)?
fn has_note(comments: &[Comment], needle: &str, line: u32, window: u32) -> bool {
    comments.iter().any(|comment| {
        comment.text.contains(needle)
            && comment.end_line + window >= line
            && comment.start_line <= line
    })
}

/// Lints one file's source. `rel_path` must be workspace-relative with
/// forward slashes — rule scoping is derived from it.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let class = classify(rel_path);
    let pragmas = parse_pragmas(&lexed);
    let test_spans = cfg_test_spans(&lexed);

    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut push = |rule: &'static str, token: &Token, message: String| {
        raw.push(Diagnostic {
            path: rel_path.to_string(),
            line: token.line,
            col: token.col,
            rule: rule.to_string(),
            message,
        });
    };

    let deterministic_scope = DETERMINISTIC_CRATES.contains(&class.crate_name.as_str());
    let wallclock_banned = !WALLCLOCK_CRATES.contains(&class.crate_name.as_str());
    let hot_path = matches!(class.crate_name.as_str(), "core" | "netsim" | "query")
        && HOT_PATH_FILES.contains(&class.file_name.as_str());

    let tokens = &lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let exempt_as_test = class.is_test_target || in_spans(&test_spans, token.line);

        // Rule: det-map.
        if deterministic_scope && !exempt_as_test {
            if let Some(name @ ("HashMap" | "HashSet")) = ident_name(Some(token)) {
                push(
                    "det-map",
                    token,
                    format!(
                        "std {name} has a randomized iteration order; use stable_nc::FxHashMap \
                         (crates/core/src/fxhash.rs) or a sorted structure"
                    ),
                );
            }
        }

        // Rule: det-wallclock.
        if wallclock_banned && !exempt_as_test {
            let flagged = match ident_name(Some(token)) {
                Some("SystemTime") => Some("SystemTime reads the wall clock"),
                Some("thread_rng") => Some("thread_rng is ambient, unseeded randomness"),
                Some("Instant")
                    if is_punct(tokens.get(i + 1), ':')
                        && is_punct(tokens.get(i + 2), ':')
                        && is_ident(tokens.get(i + 3), "now") =>
                {
                    Some("Instant::now reads the wall clock")
                }
                Some("rand")
                    if is_punct(tokens.get(i + 1), ':')
                        && is_punct(tokens.get(i + 2), ':')
                        && is_ident(tokens.get(i + 3), "random") =>
                {
                    Some("rand::random is ambient, unseeded randomness")
                }
                _ => None,
            };
            if let Some(why) = flagged {
                push(
                    "det-wallclock",
                    token,
                    format!(
                        "{why}; simulation code must use event time and seeded RNG streams \
                         (allowed only in crates/transport and crates/bench)"
                    ),
                );
            }
        }

        // Rule: panic (hot-path modules, library code only).
        if hot_path && !exempt_as_test {
            if is_punct(tokens.get(i.wrapping_sub(1)), '.') && is_punct(tokens.get(i + 1), '(') {
                if let Some(name @ ("unwrap" | "expect")) = ident_name(Some(token)) {
                    push(
                        "panic",
                        token,
                        format!(
                            ".{name}() can panic on the engine hot path; return an error, \
                             restructure, or justify with a pragma"
                        ),
                    );
                }
            }
            // Arithmetic slice index: `expr[... + ...]` where expr ends in an
            // identifier or closing bracket. An adjacent `// bounds:` note
            // acknowledges the in-range argument.
            if token.tok == Tok::Punct('[')
                && matches!(
                    tokens.get(i.wrapping_sub(1)).map(|t| &t.tok),
                    Some(Tok::Ident(_)) | Some(Tok::Punct(')')) | Some(Tok::Punct(']'))
                )
            {
                let mut depth = 0usize;
                let mut j = i;
                let mut arithmetic = false;
                while j < tokens.len() {
                    match tokens[j].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Tok::Punct('+' | '-' | '*' | '/' | '%') => arithmetic = true,
                        _ => {}
                    }
                    j += 1;
                }
                if arithmetic && !has_note(&lexed.comments, "bounds:", token.line, BOUNDS_WINDOW) {
                    push(
                        "panic",
                        token,
                        "slice index computed with arithmetic; add a `// bounds: ...` note \
                         arguing why it is in range (or restructure to a checked access)"
                            .to_string(),
                    );
                }
            }
        }

        // Rule: unsafe-comment (everywhere, tests included — unsafe test
        // scaffolding needs its reasoning written down too).
        if is_ident(Some(token), "unsafe")
            && !has_note(&lexed.comments, "SAFETY:", token.line, SAFETY_WINDOW)
        {
            push(
                "unsafe-comment",
                token,
                "`unsafe` without a `// SAFETY:` comment on the same or preceding lines"
                    .to_string(),
            );
        }

        // Rule: allow-justify (everywhere).
        if token.tok == Tok::Punct('#') {
            let mut j = i + 1;
            if is_punct(tokens.get(j), '!') {
                j += 1;
            }
            if is_punct(tokens.get(j), '[') && is_ident(tokens.get(j + 1), "allow") {
                // Find the attribute's closing bracket; the justification
                // must trail on that same line.
                let mut depth = 0usize;
                let mut close = j;
                while close < tokens.len() {
                    match tokens[close].tok {
                        Tok::Punct('[') => depth += 1,
                        Tok::Punct(']') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    close += 1;
                }
                let close_line = tokens.get(close).map(|t| t.line).unwrap_or(token.line);
                let justified = lexed
                    .comments
                    .iter()
                    .any(|comment| comment.start_line == close_line);
                if !justified {
                    push(
                        "allow-justify",
                        token,
                        "#[allow(...)] without a trailing justification comment".to_string(),
                    );
                }
            }
        }
    }

    // Rule: pragma — malformed suppressions are diagnostics themselves.
    for pragma in &pragmas {
        if !pragma.has_reason {
            raw.push(Diagnostic {
                path: rel_path.to_string(),
                line: pragma.line,
                col: 1,
                rule: "pragma".to_string(),
                message: "suppression pragma without a written reason: use \
                          `// nc-lint: allow(<rule>) — <reason>`"
                    .to_string(),
            });
        }
        for rule in &pragma.rules {
            if !is_known_rule(rule) {
                raw.push(Diagnostic {
                    path: rel_path.to_string(),
                    line: pragma.line,
                    col: 1,
                    rule: "pragma".to_string(),
                    message: format!("suppression pragma names unknown rule `{rule}`"),
                });
            }
        }
    }

    // Apply suppressions: a justified pragma covers its own line and the
    // line directly below (so it can sit above the offending statement).
    let mut diagnostics: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|diag| {
            !pragmas.iter().any(|pragma| {
                pragma.has_reason
                    && pragma.rules.iter().any(|rule| rule == &diag.rule)
                    && (pragma.line == diag.line || pragma.line + 1 == diag.line)
            })
        })
        .collect();
    diagnostics.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    diagnostics
}
