//! `nc-lint`: the workspace's determinism & safety linter.
//!
//! This reproduction's load-bearing guarantees — byte-identical
//! [`SimReport`]s across serial and sharded execution, seeded-RNG-only
//! simulation, stream-preserving opt-in features — were, until this crate,
//! defended only by after-the-fact regression tests. `nc-lint` moves them
//! to the source: a dependency-free static pass with a hand-rolled Rust
//! lexer (comments, strings and raw strings handled correctly, so prose
//! never produces false hits) and a crate-scoped rule engine that walks
//! every workspace `.rs` file outside `vendor/`, `target/` and fixture
//! directories.
//!
//! See `DETERMINISM.md` at the workspace root for the contracts each rule
//! enforces, and `cargo run -p nc-lint -- --list` for the rule set.
//!
//! Suppression is inline and auditable:
//!
//! ```text
//! // nc-lint: allow(det-map) — definition site of the deterministic alias
//! ```
//!
//! A pragma covers its own line and the line directly below; a pragma
//! without a written reason is itself a diagnostic.
//!
//! [`SimReport`]: https://example.invalid/stable-network-coordinates

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

pub use diag::{render_json, Diagnostic};
pub use rules::{lint_source, RULES};

/// Lints every discoverable `.rs` file under `root`. Returns the sorted
/// diagnostics and the number of files checked. `only`, when non-empty,
/// restricts output to the named rules.
pub fn lint_tree(root: &Path, only: &[String]) -> std::io::Result<(Vec<Diagnostic>, usize)> {
    let files = walk::rust_files(root)?;
    let checked = files.len();
    let mut diagnostics = Vec::new();
    for rel_path in &files {
        let source = std::fs::read_to_string(root.join(rel_path))?;
        let mut file_diags = rules::lint_source(rel_path, &source);
        if !only.is_empty() {
            file_diags.retain(|diag| only.iter().any(|rule| rule == &diag.rule));
        }
        diagnostics.extend(file_diags);
    }
    Ok((diagnostics, checked))
}
