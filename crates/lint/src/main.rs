//! The `nc-lint` binary: run the workspace determinism & safety lint pass.
//!
//! ```text
//! cargo run -p nc-lint -- --check              # lint the workspace, exit 1 on findings
//! cargo run -p nc-lint -- --list               # print the rule set
//! cargo run -p nc-lint -- --check --json       # machine-readable diagnostics
//! cargo run -p nc-lint -- --check --only panic # restrict to one rule (repeatable)
//! cargo run -p nc-lint -- --check --root <dir> # lint a different tree (fixtures, CI smoke)
//! ```
//!
//! Exit status is the contract: 0 means no diagnostics, 1 means findings
//! were printed (shared format with `bench_report --check` — see
//! `nc_lint::diag`), 2 means usage error.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // Two levels above this crate's manifest, like bench_report.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn usage() -> ExitCode {
    eprintln!("usage: nc-lint [--check] [--json] [--list] [--only <rule>]... [--root <dir>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut json = false;
    let mut list = false;
    let mut only: Vec<String> = Vec::new();
    let mut root = workspace_root();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Linting is always a check; the flag is accepted so the CI
            // invocation reads as what it does.
            "--check" => {}
            "--json" => json = true,
            "--list" => list = true,
            "--only" => match args.next() {
                Some(rule) if nc_lint::rules::is_known_rule(&rule) => only.push(rule),
                Some(rule) => {
                    eprintln!("nc-lint: unknown rule `{rule}` (see --list)");
                    return ExitCode::from(2);
                }
                None => return usage(),
            },
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage(),
            },
            _ => return usage(),
        }
    }

    if list {
        for rule in nc_lint::RULES {
            println!("{:<16} {}", rule.id, rule.description);
        }
        return ExitCode::SUCCESS;
    }

    let (diagnostics, checked) = match nc_lint::lint_tree(&root, &only) {
        Ok(result) => result,
        Err(error) => {
            eprintln!("nc-lint: cannot lint {}: {error}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", nc_lint::render_json(&diagnostics));
    } else {
        for diag in &diagnostics {
            println!("{}", diag.render_text());
        }
    }

    if diagnostics.is_empty() {
        eprintln!("nc-lint --check: OK ({checked} files checked)");
        ExitCode::SUCCESS
    } else {
        eprintln!("nc-lint --check: FAIL ({} diagnostics)", diagnostics.len());
        ExitCode::FAILURE
    }
}
