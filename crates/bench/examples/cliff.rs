//! Per-event-cost profiler for the simulator's scaling behaviour.
//!
//! Runs one simulated hour (shorter at very large sizes unless overridden)
//! at a ladder of mesh sizes and reports wall-clock time, an approximate
//! event count and the resulting events-per-second rate. A flat rate across
//! sizes means per-event cost is size-independent — the property the
//! 4096-node scaling work targets; a falling rate exposes a cliff
//! (superlinear per-event cost).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p nc-bench --example cliff [-- nodes...] [--threads N] [--duration S]
//! ```
//!
//! Defaults to `256 1024 4096`. `--threads N` runs the node-sharded
//! executor (`Simulator::with_threads`); profile with `perf record` around
//! this binary to attribute per-event cost.

use std::time::Instant;

use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

fn run(nodes: usize, duration_s: f64, threads: Option<usize>) -> f64 {
    let workload = PlanetLabConfig::small(nodes).with_seed(20_050_502);
    let sim_config = SimConfig::new(duration_s, 5.0).with_measurement_start(duration_s / 2.0);
    let mut simulator = Simulator::new(
        workload,
        sim_config,
        vec![("mp".to_string(), NodeConfig::paper_defaults())],
    );
    if let Some(threads) = threads {
        simulator = simulator.with_threads(threads);
    }
    let start = Instant::now();
    let report = simulator.run();
    std::hint::black_box(report);
    start.elapsed().as_secs_f64()
}

fn main() {
    let mut sizes: Vec<usize> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut duration_override: Option<f64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                let value = args.next().expect("--threads takes a worker count");
                threads = Some(value.parse().expect("--threads takes a number"));
            }
            "--duration" => {
                let value = args.next().expect("--duration takes seconds");
                duration_override = Some(value.parse().expect("--duration takes seconds"));
            }
            other => sizes.push(other.parse().unwrap_or_else(|_| {
                panic!("unrecognized argument {other:?} (expected a node count)")
            })),
        }
    }
    if sizes.is_empty() {
        sizes = vec![256, 1024, 4096];
    }

    let mut baseline: Option<f64> = None;
    for &nodes in &sizes {
        // Keep the largest sizes affordable by default: the rate, not the
        // total, is the quantity under test.
        let duration_s = duration_override.unwrap_or(if nodes > 8192 { 900.0 } else { 3600.0 });
        let elapsed = run(nodes, duration_s, threads);
        // Each probe produces ~4 events (send, deliver, response, timeout).
        let events = nodes as f64 * (duration_s / 5.0) * 4.0;
        let rate = events / elapsed / 1e6;
        let relative = baseline.get_or_insert(rate);
        println!(
            "{nodes:>6} nodes  {duration_s:>6.0} s simulated  {elapsed:>8.2} s wall  \
             {rate:>6.2}M ev/s  ({:.2}x baseline cost)",
            *relative / rate
        );
    }
}
