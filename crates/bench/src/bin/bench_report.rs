//! Bench-to-JSON reporter: runs the macro simulator benchmarks and writes
//! `BENCH_sim.json` at the workspace root, so the performance trajectory is
//! tracked across PRs instead of living only in terminal scrollback.
//!
//! Usage:
//!
//! ```text
//! cargo run -p nc-bench --release --bin bench_report                   # full run
//! cargo run -p nc-bench --release --bin bench_report -- --quick
//! cargo run -p nc-bench --release --bin bench_report -- --check --quick
//! cargo run -p nc-bench --release --bin bench_report -- --threads 4
//! cargo run -p nc-bench --release --bin bench_report -- --huge
//! ```
//!
//! The full run measures the 256-node hour (median of 3), its lossy/churn
//! variant (median of 3), the 4096-node hour and the 16,384-node hour (1
//! iteration each); `--quick` runs single iterations of the 256-node
//! workloads only, and `--huge` adds a 65,536-node hour. The JSON maps
//! bench name → median nanoseconds, node count and approximate simulator
//! events per second, and embeds the frozen pre-PR-3 baseline for
//! before/after comparison.
//!
//! `--check` compares fresh medians against the committed `BENCH_sim.json`
//! instead of rewriting it: any measured bench more than the threshold
//! slower than its recorded median (default 15 %, `--threshold <percent>`)
//! fails the run with exit code 1. CI invokes `--check --quick` as a
//! regression smoke test.
//!
//! `--threads N` (or the `NC_BENCH_THREADS` environment variable) runs
//! every simulation through the node-sharded executor
//! (`Simulator::with_threads`); the flag wins over the environment.

use std::time::Instant;

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::Scenario;
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

/// One simulated hour at the paper's deployment probe interval.
const DURATION_S: f64 = 3_600.0;
const PROBE_INTERVAL_S: f64 = 5.0;

/// Default `--check` regression threshold, as a fraction of the recorded
/// median.
const DEFAULT_CHECK_THRESHOLD: f64 = 0.15;

/// Baselines frozen immediately before PR 3 (allocation-free hot path),
/// measured as the mean of 10 samples of `cargo bench -p nc-bench --bench
/// event_sim` on the development machine. Kept in the report so the
/// speedup claim stays auditable without digging through git history.
const PRE_PR3_BASELINE: &[(&str, u64, f64)] = &[
    ("event_sim/one_hour_256_nodes", 256, 1.298e9),
    ("event_sim/one_hour_256_nodes_lossy_churn", 256, 1.054e9),
];

struct BenchResult {
    name: &'static str,
    nodes: u64,
    median_ns: f64,
    events_per_sec: f64,
}

/// Approximate number of discrete events one simulated hour generates: each
/// node launches a probe every interval, and a delivered exchange costs four
/// queue events (send, deliver, response, timeout no-op).
fn approx_events(nodes: u64) -> f64 {
    let ticks = (DURATION_S / PROBE_INTERVAL_S).floor();
    nodes as f64 * ticks * 4.0
}

fn run_sim(nodes: usize, lossy_churn: bool, threads: Option<usize>) -> std::time::Duration {
    let start = Instant::now();
    let mut workload = PlanetLabConfig::small(nodes).with_seed(20050502);
    if lossy_churn {
        workload =
            workload.with_link_config(LinkModelConfig::default().with_loss_probability(0.02));
    }
    let sim_config = SimConfig::new(DURATION_S, PROBE_INTERVAL_S).with_measurement_start(1_800.0);
    let mut simulator = Simulator::new(
        workload,
        sim_config,
        vec![("mp".to_string(), NodeConfig::paper_defaults())],
    );
    if lossy_churn {
        let crashed: Vec<usize> = (0..nodes / 4).collect();
        simulator = simulator.with_scenario(Scenario::crash_restart(crashed, 1_200.0, 1_500.0));
    }
    if let Some(threads) = threads {
        simulator = simulator.with_threads(threads);
    }
    let report = simulator.run();
    std::hint::black_box(report);
    start.elapsed()
}

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn measure(
    name: &'static str,
    nodes: u64,
    iterations: usize,
    lossy_churn: bool,
    threads: Option<usize>,
) -> BenchResult {
    let mut samples = Vec::with_capacity(iterations);
    for iteration in 0..iterations {
        let elapsed = run_sim(nodes as usize, lossy_churn, threads);
        eprintln!("  {name} iteration {}: {elapsed:?}", iteration + 1);
        samples.push(elapsed.as_nanos() as f64);
    }
    let median = median_ns(samples);
    BenchResult {
        name,
        nodes,
        median_ns: median,
        events_per_sec: approx_events(nodes) / (median / 1e9),
    }
}

/// Pulls `"<name>": { "median_ns": <value> ... }` out of the committed
/// report. The file is written by this binary with one bench per line, so a
/// line scan is enough — no JSON parser dependency needed here.
fn recorded_median(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\"");
    for line in json.lines() {
        if let Some(rest) = line.trim_start().strip_prefix(&needle) {
            let rest = rest.split("\"median_ns\":").nth(1)?;
            let value: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            return value.parse().ok();
        }
    }
    None
}

fn workspace_root() -> std::path::PathBuf {
    // The workspace root is two levels above this crate's manifest.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|arg| arg == "--quick");
    let check = args.iter().any(|arg| arg == "--check");
    let huge = args.iter().any(|arg| arg == "--huge");
    let threshold = args
        .iter()
        .position(|arg| arg == "--threshold")
        .map(|index| {
            args.get(index + 1)
                .and_then(|value| value.parse::<f64>().ok())
                .expect("--threshold takes a percentage, e.g. --threshold 15")
                / 100.0
        })
        .unwrap_or(DEFAULT_CHECK_THRESHOLD);
    let threads: Option<usize> = args
        .iter()
        .position(|arg| arg == "--threads")
        .map(|index| {
            args.get(index + 1)
                .and_then(|value| value.parse().ok())
                .expect("--threads takes a worker count, e.g. --threads 4")
        })
        .or_else(|| {
            std::env::var("NC_BENCH_THREADS")
                .ok()
                .map(|value| value.parse().expect("NC_BENCH_THREADS must be a number"))
        });
    let iterations = if quick { 1 } else { 3 };

    eprintln!(
        "bench_report: measuring macro benches ({} iterations each{}) ...",
        iterations,
        match threads {
            Some(threads) => format!(", sharded over {threads} threads"),
            None => String::new(),
        }
    );
    let mut results = vec![
        measure(
            "event_sim/one_hour_256_nodes",
            256,
            iterations,
            false,
            threads,
        ),
        measure(
            "event_sim/one_hour_256_nodes_lossy_churn",
            256,
            iterations,
            true,
            threads,
        ),
    ];
    if !quick {
        results.push(measure(
            "event_sim/one_hour_4096_nodes",
            4096,
            1,
            false,
            threads,
        ));
        results.push(measure(
            "event_sim/one_hour_16384_nodes",
            16384,
            1,
            false,
            threads,
        ));
    }
    if huge {
        results.push(measure(
            "event_sim/one_hour_65536_nodes",
            65536,
            1,
            false,
            threads,
        ));
    }

    let root = workspace_root();
    let path = root.join("BENCH_sim.json");

    if check {
        let recorded = std::fs::read_to_string(&path)
            .unwrap_or_else(|error| panic!("--check needs {}: {error}", path.display()));
        // Diagnostics follow the workspace check-tool contract shared with
        // nc-lint (see DETERMINISM.md): one `<tool>: error[<rule>]: ...`
        // line per finding, a `<tool> --check: FAIL (n diagnostics)` or
        // `OK (...)` summary, and a nonzero exit iff anything was found.
        let mut checked = 0;
        let mut failures = 0;
        for result in &results {
            let Some(median) = recorded_median(&recorded, result.name) else {
                eprintln!("  {}: not in BENCH_sim.json, skipping", result.name);
                continue;
            };
            checked += 1;
            let ratio = result.median_ns / median;
            let delta = (ratio - 1.0) * 100.0;
            if ratio > 1.0 + threshold {
                failures += 1;
                eprintln!(
                    "bench_report: error[bench-regression]: {}: fresh {:.0} ns vs recorded {:.0} ns ({delta:+.1} %), over the {:.0} % budget",
                    result.name,
                    result.median_ns,
                    median,
                    threshold * 100.0
                );
            } else {
                eprintln!(
                    "  {}: fresh {:.0} ns vs recorded {:.0} ns ({delta:+.1} %) ok",
                    result.name, result.median_ns, median
                );
            }
        }
        if failures > 0 {
            eprintln!("bench_report --check: FAIL ({failures} diagnostics)");
            std::process::exit(1);
        }
        eprintln!("bench_report --check: OK ({checked} benches checked)");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    json.push_str(
        "  \"description\": \"Macro simulator benchmarks (median wall-clock ns); regenerate with `cargo run -p nc-bench --release --bin bench_report`\",\n",
    );
    json.push_str("  \"benches\": {\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"median_ns\": {:.0}, \"nodes\": {}, \"events_per_sec\": {:.0} }}{}\n",
            result.name,
            result.median_ns,
            result.nodes,
            result.events_per_sec,
            if index + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"baseline_pre_pr3\": {\n");
    for (index, (name, nodes, ns)) in PRE_PR3_BASELINE.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{ \"median_ns\": {ns:.0}, \"nodes\": {nodes}, \"events_per_sec\": {:.0} }}{}\n",
            approx_events(*nodes) / (ns / 1e9),
            if index + 1 < PRE_PR3_BASELINE.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {}", path.display());
    print!("{json}");
}
