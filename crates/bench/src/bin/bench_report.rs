//! Bench-to-JSON reporter: runs the macro simulator benchmarks and writes
//! `BENCH_sim.json` at the workspace root, so the performance trajectory is
//! tracked across PRs instead of living only in terminal scrollback.
//!
//! Usage:
//!
//! ```text
//! cargo run -p nc-bench --release --bin bench_report           # full run
//! cargo run -p nc-bench --release --bin bench_report -- --quick
//! ```
//!
//! The full run measures the 256-node hour (median of 3), its lossy/churn
//! variant (median of 3) and the 4096-node hour (1 iteration, ~30 s);
//! `--quick` runs single iterations of the 256-node workloads only. The
//! JSON maps bench name → median nanoseconds, node count and approximate
//! simulator events per second, and embeds the frozen pre-PR-3 baseline for
//! before/after comparison.

use std::time::Instant;

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::Scenario;
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

/// One simulated hour at the paper's deployment probe interval.
const DURATION_S: f64 = 3_600.0;
const PROBE_INTERVAL_S: f64 = 5.0;

/// Baselines frozen immediately before PR 3 (allocation-free hot path),
/// measured as the mean of 10 samples of `cargo bench -p nc-bench --bench
/// event_sim` on the development machine. Kept in the report so the
/// speedup claim stays auditable without digging through git history.
const PRE_PR3_BASELINE: &[(&str, u64, f64)] = &[
    ("event_sim/one_hour_256_nodes", 256, 1.298e9),
    ("event_sim/one_hour_256_nodes_lossy_churn", 256, 1.054e9),
];

struct BenchResult {
    name: &'static str,
    nodes: u64,
    median_ns: f64,
    events_per_sec: f64,
}

/// Approximate number of discrete events one simulated hour generates: each
/// node launches a probe every interval, and a delivered exchange costs four
/// queue events (send, deliver, response, timeout no-op).
fn approx_events(nodes: u64) -> f64 {
    let ticks = (DURATION_S / PROBE_INTERVAL_S).floor();
    nodes as f64 * ticks * 4.0
}

fn run_sim(nodes: usize, lossy_churn: bool) -> std::time::Duration {
    let start = Instant::now();
    let mut workload = PlanetLabConfig::small(nodes).with_seed(20050502);
    if lossy_churn {
        workload =
            workload.with_link_config(LinkModelConfig::default().with_loss_probability(0.02));
    }
    let sim_config = SimConfig::new(DURATION_S, PROBE_INTERVAL_S).with_measurement_start(1_800.0);
    let mut simulator = Simulator::new(
        workload,
        sim_config,
        vec![("mp".to_string(), NodeConfig::paper_defaults())],
    );
    if lossy_churn {
        let crashed: Vec<usize> = (0..nodes / 4).collect();
        simulator = simulator.with_scenario(Scenario::crash_restart(crashed, 1_200.0, 1_500.0));
    }
    let report = simulator.run();
    std::hint::black_box(report);
    start.elapsed()
}

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn measure(name: &'static str, nodes: u64, iterations: usize, lossy_churn: bool) -> BenchResult {
    let mut samples = Vec::with_capacity(iterations);
    for iteration in 0..iterations {
        let elapsed = run_sim(nodes as usize, lossy_churn);
        eprintln!("  {name} iteration {}: {elapsed:?}", iteration + 1);
        samples.push(elapsed.as_nanos() as f64);
    }
    let median = median_ns(samples);
    BenchResult {
        name,
        nodes,
        median_ns: median,
        events_per_sec: approx_events(nodes) / (median / 1e9),
    }
}

fn main() {
    let quick = std::env::args().any(|arg| arg == "--quick");
    let iterations = if quick { 1 } else { 3 };

    eprintln!(
        "bench_report: measuring macro benches ({} iterations each) ...",
        iterations
    );
    let mut results = vec![
        measure("event_sim/one_hour_256_nodes", 256, iterations, false),
        measure(
            "event_sim/one_hour_256_nodes_lossy_churn",
            256,
            iterations,
            true,
        ),
    ];
    if !quick {
        results.push(measure("event_sim/one_hour_4096_nodes", 4096, 1, false));
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    json.push_str(
        "  \"description\": \"Macro simulator benchmarks (median wall-clock ns); regenerate with `cargo run -p nc-bench --release --bin bench_report`\",\n",
    );
    json.push_str("  \"benches\": {\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"median_ns\": {:.0}, \"nodes\": {}, \"events_per_sec\": {:.0} }}{}\n",
            result.name,
            result.median_ns,
            result.nodes,
            result.events_per_sec,
            if index + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"baseline_pre_pr3\": {\n");
    for (index, (name, nodes, ns)) in PRE_PR3_BASELINE.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{ \"median_ns\": {ns:.0}, \"nodes\": {nodes}, \"events_per_sec\": {:.0} }}{}\n",
            approx_events(*nodes) / (ns / 1e9),
            if index + 1 < PRE_PR3_BASELINE.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    // The workspace root is two levels above this crate's manifest.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf();
    let path = root.join("BENCH_sim.json");
    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {}", path.display());
    print!("{json}");
}
