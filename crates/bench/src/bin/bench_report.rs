//! Bench-to-JSON reporter: runs the macro simulator benchmarks and writes
//! `BENCH_sim.json` at the workspace root, so the performance trajectory is
//! tracked across PRs instead of living only in terminal scrollback.
//!
//! Usage:
//!
//! ```text
//! cargo run -p nc-bench --release --bin bench_report                   # full run
//! cargo run -p nc-bench --release --bin bench_report -- --quick
//! cargo run -p nc-bench --release --bin bench_report -- --check --quick
//! cargo run -p nc-bench --release --bin bench_report -- --threads 4
//! cargo run -p nc-bench --release --bin bench_report -- --huge
//! ```
//!
//! The full run measures the 256-node hour (median of 3), its lossy/churn
//! variant (median of 3), the 4096-node hour and the 16,384-node hour (1
//! iteration each), plus the `nc-query` read path: batches of k-nearest
//! queries against indexes of 10,000 and 100,000 synthetic tracked nodes;
//! `--quick` runs single iterations of the 256-node workloads and both
//! query batches, and `--huge` adds a 65,536-node hour and a
//! 1,000,000-node query batch. The JSON maps bench name → median
//! nanoseconds, node count and throughput (simulator events or queries per
//! second), and embeds the frozen pre-PR-3 baseline for before/after
//! comparison.
//!
//! `--check` compares fresh medians against the committed `BENCH_sim.json`
//! instead of rewriting it: any measured bench more than the threshold
//! slower than its recorded median (default 15 %, `--threshold <percent>`)
//! fails the run with exit code 1. CI invokes `--check --quick` as a
//! regression smoke test.
//!
//! `--threads N` (or the `NC_BENCH_THREADS` environment variable) runs
//! every simulation through the node-sharded executor
//! (`Simulator::with_threads`); the flag wins over the environment.

use std::time::Instant;

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::Scenario;
use nc_netsim::sim::{SimConfig, Simulator};
use nc_query::{CoordinateIndex, QueryConfig};
use nc_vivaldi::Coordinate;
use stable_nc::NodeConfig;

/// One simulated hour at the paper's deployment probe interval.
const DURATION_S: f64 = 3_600.0;
const PROBE_INTERVAL_S: f64 = 5.0;

/// Default `--check` regression threshold, as a fraction of the recorded
/// median.
const DEFAULT_CHECK_THRESHOLD: f64 = 0.15;

/// Baselines frozen immediately before PR 3 (allocation-free hot path),
/// measured as the mean of 10 samples of `cargo bench -p nc-bench --bench
/// event_sim` on the development machine. Kept in the report so the
/// speedup claim stays auditable without digging through git history.
const PRE_PR3_BASELINE: &[(&str, u64, f64)] = &[
    ("event_sim/one_hour_256_nodes", 256, 1.298e9),
    ("event_sim/one_hour_256_nodes_lossy_churn", 256, 1.054e9),
];

struct BenchResult {
    name: &'static str,
    nodes: u64,
    median_ns: f64,
    /// Throughput over the median sample; labelled per bench family in the
    /// JSON (`events_per_sec` for the simulator, `queries_per_sec` for the
    /// query read path).
    rate: f64,
    rate_key: &'static str,
}

/// Approximate number of discrete events one simulated hour generates: each
/// node launches a probe every interval, and a delivered exchange costs four
/// queue events (send, deliver, response, timeout no-op).
fn approx_events(nodes: u64) -> f64 {
    let ticks = (DURATION_S / PROBE_INTERVAL_S).floor();
    nodes as f64 * ticks * 4.0
}

fn run_sim(nodes: usize, lossy_churn: bool, threads: Option<usize>) -> std::time::Duration {
    let start = Instant::now();
    let mut workload = PlanetLabConfig::small(nodes).with_seed(20050502);
    if lossy_churn {
        workload =
            workload.with_link_config(LinkModelConfig::default().with_loss_probability(0.02));
    }
    let sim_config = SimConfig::new(DURATION_S, PROBE_INTERVAL_S).with_measurement_start(1_800.0);
    let mut simulator = Simulator::new(
        workload,
        sim_config,
        vec![("mp".to_string(), NodeConfig::paper_defaults())],
    );
    if lossy_churn {
        let crashed: Vec<usize> = (0..nodes / 4).collect();
        simulator = simulator.with_scenario(Scenario::crash_restart(crashed, 1_200.0, 1_500.0));
    }
    if let Some(threads) = threads {
        simulator = simulator.with_threads(threads);
    }
    let report = simulator.run();
    std::hint::black_box(report);
    start.elapsed()
}

fn median_ns(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn measure(
    name: &'static str,
    nodes: u64,
    iterations: usize,
    lossy_churn: bool,
    threads: Option<usize>,
) -> BenchResult {
    let mut samples = Vec::with_capacity(iterations);
    for iteration in 0..iterations {
        let elapsed = run_sim(nodes as usize, lossy_churn, threads);
        eprintln!("  {name} iteration {}: {elapsed:?}", iteration + 1);
        samples.push(elapsed.as_nanos() as f64);
    }
    let median = median_ns(samples);
    BenchResult {
        name,
        nodes,
        median_ns: median,
        rate: approx_events(nodes) / (median / 1e9),
        rate_key: "events_per_sec",
    }
}

/// How many k-nearest queries one read-path sample issues.
const QUERY_BATCH: usize = 100_000;
/// Neighbours requested per query (a replica-selection-sized answer).
const QUERY_K: usize = 8;

/// splitmix64: a tiny deterministic generator for the synthetic coordinate
/// population — the bench must not depend on ambient randomness.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A synthetic-but-plausible coordinate: components spread over ±300 ms (a
/// terrestrial embedding), heights of a few ms (well-connected nodes'
/// access links; the height term adds to every distance, so it directly
/// sets the k-NN candidate radius).
fn synthetic_coordinate(state: &mut u64) -> Coordinate {
    let mut axis = || {
        let raw = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
        (raw - 0.5) * 600.0
    };
    let components = [axis(), axis(), axis()];
    let height = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64 * 4.0;
    Coordinate::with_height(components, height).expect("synthetic coordinate is finite")
}

/// Measures the `nc-query` read path: builds an index of `nodes` synthetic
/// tracked coordinates (untimed), then times a batch of `QUERY_BATCH`
/// k-nearest queries against it.
fn measure_queries(name: &'static str, nodes: u64, iterations: usize) -> BenchResult {
    let mut state = 0x5EED ^ nodes;
    let mut index: CoordinateIndex<u64> =
        CoordinateIndex::new(QueryConfig::default()).expect("default config validates");
    for id in 0..nodes {
        let coordinate = synthetic_coordinate(&mut state);
        index
            .update(id, &coordinate)
            .expect("insert synthetic node");
    }
    let mut samples = Vec::with_capacity(iterations);
    for iteration in 0..iterations {
        let mut sink = 0.0f64;
        let start = Instant::now();
        for _ in 0..QUERY_BATCH {
            let target = synthetic_coordinate(&mut state);
            let hits = index.k_nearest(&target, QUERY_K).expect("query");
            if let Some(nearest) = hits.first() {
                sink += nearest.distance_ms;
            }
        }
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        eprintln!("  {name} iteration {}: {elapsed:?}", iteration + 1);
        samples.push(elapsed.as_nanos() as f64);
    }
    let median = median_ns(samples);
    BenchResult {
        name,
        nodes,
        median_ns: median,
        rate: QUERY_BATCH as f64 / (median / 1e9),
        rate_key: "queries_per_sec",
    }
}

/// Pulls `"<name>": { "median_ns": <value> ... }` out of the committed
/// report. The file is written by this binary with one bench per line, so a
/// line scan is enough — no JSON parser dependency needed here.
fn recorded_median(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\"");
    for line in json.lines() {
        if let Some(rest) = line.trim_start().strip_prefix(&needle) {
            let rest = rest.split("\"median_ns\":").nth(1)?;
            let value: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.')
                .collect();
            return value.parse().ok();
        }
    }
    None
}

fn workspace_root() -> std::path::PathBuf {
    // The workspace root is two levels above this crate's manifest.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/bench sits two levels below the workspace root")
        .to_path_buf()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|arg| arg == "--quick");
    let check = args.iter().any(|arg| arg == "--check");
    let huge = args.iter().any(|arg| arg == "--huge");
    let threshold = args
        .iter()
        .position(|arg| arg == "--threshold")
        .map(|index| {
            args.get(index + 1)
                .and_then(|value| value.parse::<f64>().ok())
                .expect("--threshold takes a percentage, e.g. --threshold 15")
                / 100.0
        })
        .unwrap_or(DEFAULT_CHECK_THRESHOLD);
    let threads: Option<usize> = args
        .iter()
        .position(|arg| arg == "--threads")
        .map(|index| {
            args.get(index + 1)
                .and_then(|value| value.parse().ok())
                .expect("--threads takes a worker count, e.g. --threads 4")
        })
        .or_else(|| {
            std::env::var("NC_BENCH_THREADS")
                .ok()
                .map(|value| value.parse().expect("NC_BENCH_THREADS must be a number"))
        });
    let iterations = if quick { 1 } else { 3 };

    eprintln!(
        "bench_report: measuring macro benches ({} iterations each{}) ...",
        iterations,
        match threads {
            Some(threads) => format!(", sharded over {threads} threads"),
            None => String::new(),
        }
    );
    let mut results = vec![
        measure(
            "event_sim/one_hour_256_nodes",
            256,
            iterations,
            false,
            threads,
        ),
        measure(
            "event_sim/one_hour_256_nodes_lossy_churn",
            256,
            iterations,
            true,
            threads,
        ),
    ];
    if !quick {
        results.push(measure(
            "event_sim/one_hour_4096_nodes",
            4096,
            1,
            false,
            threads,
        ));
        results.push(measure(
            "event_sim/one_hour_16384_nodes",
            16384,
            1,
            false,
            threads,
        ));
    }
    if huge {
        results.push(measure(
            "event_sim/one_hour_65536_nodes",
            65536,
            1,
            false,
            threads,
        ));
    }
    // Query read-path batches run in quick mode too: the CI `--check
    // --quick` gate covers them, so a k-NN slowdown fails the smoke test.
    results.push(measure_queries("query/knn_10k_nodes", 10_000, iterations));
    results.push(measure_queries("query/knn_100k_nodes", 100_000, iterations));
    if huge {
        results.push(measure_queries("query/knn_1m_nodes", 1_000_000, 1));
    }

    let root = workspace_root();
    let path = root.join("BENCH_sim.json");

    if check {
        let recorded = std::fs::read_to_string(&path)
            .unwrap_or_else(|error| panic!("--check needs {}: {error}", path.display()));
        // Diagnostics follow the workspace check-tool contract shared with
        // nc-lint (see DETERMINISM.md): one `<tool>: error[<rule>]: ...`
        // line per finding, a `<tool> --check: FAIL (n diagnostics)` or
        // `OK (...)` summary, and a nonzero exit iff anything was found.
        let mut checked = 0;
        let mut failures = 0;
        for result in &results {
            let Some(median) = recorded_median(&recorded, result.name) else {
                eprintln!("  {}: not in BENCH_sim.json, skipping", result.name);
                continue;
            };
            checked += 1;
            let ratio = result.median_ns / median;
            let delta = (ratio - 1.0) * 100.0;
            if ratio > 1.0 + threshold {
                failures += 1;
                eprintln!(
                    "bench_report: error[bench-regression]: {}: fresh {:.0} ns vs recorded {:.0} ns ({delta:+.1} %), over the {:.0} % budget",
                    result.name,
                    result.median_ns,
                    median,
                    threshold * 100.0
                );
            } else {
                eprintln!(
                    "  {}: fresh {:.0} ns vs recorded {:.0} ns ({delta:+.1} %) ok",
                    result.name, result.median_ns, median
                );
            }
        }
        if failures > 0 {
            eprintln!("bench_report --check: FAIL ({failures} diagnostics)");
            std::process::exit(1);
        }
        eprintln!("bench_report --check: OK ({checked} benches checked)");
        return;
    }

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 1,\n");
    json.push_str(
        "  \"description\": \"Macro simulator benchmarks (median wall-clock ns); regenerate with `cargo run -p nc-bench --release --bin bench_report`\",\n",
    );
    json.push_str("  \"benches\": {\n");
    for (index, result) in results.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"median_ns\": {:.0}, \"nodes\": {}, \"{}\": {:.0} }}{}\n",
            result.name,
            result.median_ns,
            result.nodes,
            result.rate_key,
            result.rate,
            if index + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  },\n");
    json.push_str("  \"baseline_pre_pr3\": {\n");
    for (index, (name, nodes, ns)) in PRE_PR3_BASELINE.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{ \"median_ns\": {ns:.0}, \"nodes\": {nodes}, \"events_per_sec\": {:.0} }}{}\n",
            approx_events(*nodes) / (ns / 1e9),
            if index + 1 < PRE_PR3_BASELINE.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");

    std::fs::write(&path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {}", path.display());
    print!("{json}");
}
