//! Benchmark-only crate.
//!
//! All content lives in `benches/`:
//!
//! * `micro` — per-observation costs of the filters, the Vivaldi update, the
//!   change-detection statistics and the full `StableNode::observe` path.
//! * `figures` — one Criterion target per paper figure, each running the
//!   corresponding experiment end to end at quick scale.
//! * `tables` — Table I end to end plus simulator scaling ablations.
//!
//! Run with `cargo bench --workspace`. For full-scale experiment numbers use
//! the binaries in `nc-experiments` (e.g. `cargo run --release --bin
//! fig13_planetlab standard`).
