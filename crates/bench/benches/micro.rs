//! Micro-benchmarks of the per-observation costs: the latency filters, the
//! Vivaldi update rule, the change-detection statistics and the full
//! `StableNode` wire-digestion path. These are the operations a deployed
//! node performs for every probe, so their cost bounds the sustainable
//! probing rate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use nc_change::{EnergyHeuristic, RelativeHeuristic, UpdateContext, UpdateHeuristic};
use nc_filters::{EwmaFilter, LatencyFilter, MovingPercentileFilter, RawFilter};
use nc_stats::{energy_distance_by, percentile};
use nc_vivaldi::{Coordinate, RemoteObservation, VivaldiConfig, VivaldiState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use stable_nc::{NodeConfig, ProbeResponse, StableNode};

fn latency_stream(len: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.01) {
                2_000.0 + rng.gen_range(0.0..20_000.0)
            } else {
                80.0 + rng.gen_range(-5.0..5.0)
            }
        })
        .collect()
}

fn bench_filters(c: &mut Criterion) {
    let stream = latency_stream(1_000);
    let mut group = c.benchmark_group("filters_per_1000_observations");
    group.bench_function("moving_percentile_h4_p25", |b| {
        b.iter_batched(
            MovingPercentileFilter::paper_defaults,
            |mut filter| {
                for &s in &stream {
                    black_box(filter.observe(s));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("moving_percentile_h128", |b| {
        b.iter_batched(
            || MovingPercentileFilter::new(128, 25.0).unwrap(),
            |mut filter| {
                for &s in &stream {
                    black_box(filter.observe(s));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ewma_alpha_0_1", |b| {
        b.iter_batched(
            || EwmaFilter::new(0.1).unwrap(),
            |mut filter| {
                for &s in &stream {
                    black_box(filter.observe(s));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("raw", |b| {
        b.iter_batched(
            RawFilter::new,
            |mut filter| {
                for &s in &stream {
                    black_box(filter.observe(s));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_vivaldi_update(c: &mut Criterion) {
    let remote = Coordinate::new(vec![30.0, 40.0, 10.0]).unwrap();
    c.bench_function("vivaldi_observe", |b| {
        b.iter_batched(
            || VivaldiState::new(VivaldiConfig::paper_defaults()),
            |mut state| {
                for i in 0..100 {
                    let obs = RemoteObservation::new(remote.clone(), 0.4, 60.0 + (i % 7) as f64);
                    black_box(state.observe(&obs));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

/// Tight loops over the allocation-free hot path, so a heap allocation or a
/// regression creeping back into the per-observation arithmetic is directly
/// visible as a per-op time jump. These benches measure *single* operations
/// (amortised over a tight loop), unlike the per-1000-observation batches
/// above.
fn bench_hot_path_tight_loops(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path_tight_loop");

    // Coordinate algebra: the exact op sequence of one Vivaldi spring step.
    let a = Coordinate::new(vec![12.0, -7.0, 3.0]).unwrap();
    let bcoord = Coordinate::new(vec![-4.0, 9.0, 21.0]).unwrap();
    group.bench_function("coordinate_algebra_1000_steps", |b| {
        b.iter(|| {
            let mut acc = a.clone();
            for _ in 0..1000 {
                let distance = acc.distance(black_box(&bcoord));
                let mut direction = acc
                    .unit_vector_from(black_box(&bcoord))
                    .expect("distinct points");
                direction.scale_in_place(0.25 * (60.0 - distance));
                acc.displace_by(&direction);
                black_box(&acc);
            }
            acc
        })
    });

    // One full Vivaldi update on a warmed state (steady state: no
    // tie-breaking, no warm-up effects).
    group.bench_function("vivaldi_single_update_x1000", |b| {
        b.iter_batched(
            || {
                let mut state = VivaldiState::new(VivaldiConfig::paper_defaults());
                let remote = Coordinate::new(vec![30.0, 40.0, 10.0]).unwrap();
                for _ in 0..32 {
                    state.observe(&RemoteObservation::new(remote.clone(), 0.4, 60.0));
                }
                (state, remote)
            },
            |(mut state, remote)| {
                for i in 0..1000u32 {
                    let obs = RemoteObservation::new(remote.clone(), 0.4, 60.0 + (i % 7) as f64);
                    black_box(state.observe(&obs));
                }
                state
            },
            BatchSize::SmallInput,
        )
    });

    // One MP-filter observation on a full window (steady state: the expiring
    // sample is removed and the new one inserted by binary search).
    group.bench_function("moving_percentile_observe_x1000", |b| {
        b.iter_batched(
            || {
                let mut filter = MovingPercentileFilter::paper_defaults();
                for raw in [80.0, 82.0, 79.0, 81.0] {
                    filter.observe(raw);
                }
                filter
            },
            |mut filter| {
                for i in 0..1000u32 {
                    black_box(filter.observe(78.0 + (i % 11) as f64));
                }
                filter
            },
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

fn bench_change_detection(c: &mut Criterion) {
    let mut group = c.benchmark_group("change_detection_per_update");
    let coords: Vec<Coordinate> = (0..128)
        .map(|i| Coordinate::new(vec![i as f64 * 0.3, 20.0, 5.0]).unwrap())
        .collect();
    for window in [8usize, 32, 128] {
        group.bench_function(format!("energy_window_{window}"), |b| {
            b.iter_batched(
                || EnergyHeuristic::new(8.0, window),
                |mut heuristic| {
                    let app = Coordinate::origin(3);
                    for coord in &coords {
                        black_box(heuristic.on_system_update(
                            coord,
                            &app,
                            &UpdateContext::default(),
                        ));
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.bench_function("relative_window_32", |b| {
        b.iter_batched(
            || RelativeHeuristic::new(0.3, 32),
            |mut heuristic| {
                let app = Coordinate::origin(3);
                let ctx = UpdateContext {
                    nearest_neighbor: Some(Coordinate::new(vec![5.0, 5.0, 0.0]).unwrap()),
                };
                for coord in &coords {
                    black_box(heuristic.on_system_update(coord, &app, &ctx));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_statistics(c: &mut Criterion) {
    let data = latency_stream(10_000);
    c.bench_function("percentile_10k_samples", |b| {
        b.iter(|| black_box(percentile(&data, 95.0).unwrap()))
    });
    let a: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64, 0.0, 1.0]).collect();
    let bb: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64 + 10.0, 2.0, 1.0]).collect();
    c.bench_function("energy_distance_32x32", |b| {
        b.iter(|| {
            black_box(
                energy_distance_by(&a, &bb, |x, y| {
                    x.iter()
                        .zip(y.iter())
                        .map(|(p, q)| (p - q) * (p - q))
                        .sum::<f64>()
                        .sqrt()
                })
                .unwrap(),
            )
        })
    });
}

fn bench_stable_node(c: &mut Criterion) {
    let stream = latency_stream(1_000);
    let remote = Coordinate::new(vec![30.0, 40.0, 10.0]).unwrap();
    let mut group = c.benchmark_group("stable_node_per_1000_observations");
    for (name, config) in [
        ("paper_defaults", NodeConfig::paper_defaults()),
        ("original_vivaldi", NodeConfig::original_vivaldi()),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    // Pre-build the response once; the loop re-stamps seq and
                    // rtt so only the wire digestion path is measured.
                    let mut node = StableNode::<u32>::new(config.clone());
                    let request = node.probe_request_for(1, 0);
                    let response = ProbeResponse::new(1, &request, remote.clone(), 0.4);
                    let events: Vec<stable_nc::Event<u32>> = Vec::with_capacity(32);
                    (node, response, events)
                },
                |(mut node, mut response, mut events)| {
                    for (step, &rtt) in stream.iter().enumerate() {
                        let request = node.probe_request_for(1, step as u64 + 1);
                        response.seq = request.seq;
                        response.rtt_ms = rtt;
                        events.clear();
                        node.handle_response_into(&response, &mut events);
                        black_box(&events);
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    micro,
    bench_filters,
    bench_vivaldi_update,
    bench_hot_path_tight_loops,
    bench_change_detection,
    bench_statistics,
    bench_stable_node
);
criterion_main!(micro);
