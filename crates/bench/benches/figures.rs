//! One benchmark per figure of the paper: each target runs the corresponding
//! experiment end to end (at quick scale) and reports its wall-clock cost.
//! Together with the `tables` bench this is the harness that regenerates the
//! complete evaluation; run the experiment binaries (`cargo run --release
//! --bin figXX ... standard`) for the full-size numbers recorded in
//! `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use nc_experiments::{
    fig02, fig03, fig04, fig05, fig06, fig07, fig08, fig09, fig10, fig11, fig12, fig13, fig14,
};

fn config(c: &mut Criterion) -> &mut Criterion {
    c
}

fn bench_trace_figures(c: &mut Criterion) {
    let c = config(c);
    let mut group = c.benchmark_group("figures_trace_analysis");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("fig02_latency_histogram", |b| {
        b.iter(|| black_box(fig02::run(fig02::Fig02Config::quick())))
    });
    group.bench_function("fig03_single_link", |b| {
        b.iter(|| black_box(fig03::run(fig03::Fig03Config::quick())))
    });
    group.bench_function("fig04_history_size", |b| {
        b.iter(|| black_box(fig04::run(fig04::Fig04Config::quick())))
    });
    group.finish();
}

fn bench_filter_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_filtering");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("fig05_filter_cdfs", |b| {
        b.iter(|| black_box(fig05::run(fig05::Fig05Config::quick())))
    });
    group.bench_function("fig06_confidence", |b| {
        b.iter(|| black_box(fig06::run(fig06::Fig06Config::quick())))
    });
    group.bench_function("fig07_drift", |b| {
        b.iter(|| black_box(fig07::run(fig07::Fig07Config::quick())))
    });
    group.finish();
}

fn bench_heuristic_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_application_updates");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("fig08_threshold_sweep", |b| {
        b.iter(|| black_box(fig08::run(fig08::Fig08Config::quick())))
    });
    group.bench_function("fig09_window_sweep", |b| {
        b.iter(|| black_box(fig09::run(fig09::Fig09Config::quick())))
    });
    group.bench_function("fig10_heuristics", |b| {
        b.iter(|| black_box(fig10::run(fig10::Fig10Config::quick())))
    });
    group.bench_function("fig11_app_vs_raw", |b| {
        b.iter(|| black_box(fig11::run(fig11::Fig11Config::quick())))
    });
    group.bench_function("fig12_centroid", |b| {
        b.iter(|| black_box(fig12::run(fig12::Fig12Config::quick())))
    });
    group.finish();
}

fn bench_deployment_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_deployment");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("fig13_planetlab", |b| {
        b.iter(|| black_box(fig13::run(fig13::Fig13Config::quick())))
    });
    group.bench_function("fig14_convergence", |b| {
        b.iter(|| black_box(fig14::run(fig14::Fig14Config::quick())))
    });
    group.finish();
}

criterion_group!(
    figures,
    bench_trace_figures,
    bench_filter_figures,
    bench_heuristic_figures,
    bench_deployment_figures
);
criterion_main!(figures);
