//! Benchmarks for the paper's table (Table I) and the simulator itself:
//! Table I end to end, plus ablations of the simulator's per-step cost with
//! one versus several side-by-side configurations — the knob that determines
//! how expensive the comparative experiments are.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use nc_experiments::table1;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    group.bench_function("table1_ewma_comparison", |b| {
        b.iter(|| black_box(table1::run(table1::Table1Config::quick())))
    });
    group.finish();
}

fn bench_simulator_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator_scaling");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for configs in [1usize, 2, 4] {
        group.bench_function(format!("16_nodes_600s_{configs}_configs"), |b| {
            b.iter(|| {
                let named: Vec<(String, NodeConfig)> = (0..configs)
                    .map(|i| (format!("c{i}"), NodeConfig::paper_defaults()))
                    .collect();
                let report = Simulator::new(
                    PlanetLabConfig::small(16).with_seed(3),
                    SimConfig::new(600.0, 5.0).with_measurement_start(300.0),
                    named,
                )
                .run();
                black_box(report)
            })
        });
    }
    group.finish();
}

criterion_group!(tables, bench_table1, bench_simulator_scaling);
criterion_main!(tables);
