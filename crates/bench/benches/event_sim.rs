//! End-to-end cost of the discrete-event simulator core: one simulated hour
//! of the paper's deployment schedule (5 s probe interval) at 256 nodes —
//! ~184k full wire exchanges through the event queue — plus a lossy/churn
//! variant that additionally exercises timeouts, `ProbeLost` accounting and
//! the snapshot-restore path, and a 4096-node hour (~2.9M exchanges) that
//! tracks the allocation-free hot path at production-study scale.
//! `cargo bench --no-run` in CI compiles these targets, so any breakage of
//! the scenario or event-queue API is caught even when the benches are not
//! executed.
//!
//! `cargo run -p nc-bench --release --bin bench_report` runs the same
//! workloads and records the medians in `BENCH_sim.json`, the perf
//! trajectory tracked across PRs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::Scenario;
use nc_netsim::sim::{SimConfig, Simulator};
use stable_nc::NodeConfig;

fn bench_simulated_hour(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_sim");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("one_hour_256_nodes", |b| {
        b.iter(|| {
            let workload = PlanetLabConfig::small(256).with_seed(20050502);
            let sim_config = SimConfig::new(3_600.0, 5.0).with_measurement_start(1_800.0);
            let report = Simulator::new(
                workload,
                sim_config,
                vec![("mp".to_string(), NodeConfig::paper_defaults())],
            )
            .run();
            black_box(report)
        })
    });

    group.bench_function("one_hour_256_nodes_lossy_churn", |b| {
        b.iter(|| {
            let workload = PlanetLabConfig::small(256)
                .with_seed(20050502)
                .with_link_config(LinkModelConfig::default().with_loss_probability(0.02));
            let sim_config = SimConfig::new(3_600.0, 5.0).with_measurement_start(1_800.0);
            let crashed: Vec<usize> = (0..64).collect();
            let report = Simulator::new(
                workload,
                sim_config,
                vec![("mp".to_string(), NodeConfig::paper_defaults())],
            )
            .with_scenario(Scenario::crash_restart(crashed, 1_200.0, 1_500.0))
            .run();
            black_box(report)
        })
    });

    group.finish();
}

fn bench_simulated_hour_4096(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_sim");
    // A 4096-node hour pushes ~2.9M wire exchanges per iteration; two
    // samples keep the whole target under a minute while still exposing a
    // gross regression.
    group.sample_size(2);
    group.measurement_time(Duration::from_secs(60));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("one_hour_4096_nodes", |b| {
        b.iter(|| {
            let workload = PlanetLabConfig::small(4096).with_seed(20050502);
            let sim_config = SimConfig::new(3_600.0, 5.0).with_measurement_start(1_800.0);
            let report = Simulator::new(
                workload,
                sim_config,
                vec![("mp".to_string(), NodeConfig::paper_defaults())],
            )
            .run();
            black_box(report)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_simulated_hour, bench_simulated_hour_4096);
criterion_main!(benches);
