//! Stable and Accurate Network Coordinates — workspace façade.
//!
//! This crate re-exports the public API of the workspace so that examples,
//! integration tests and downstream users can depend on a single package:
//!
//! * [`stable_nc`] — the paper's contribution: the [`StableNode`] coordinate
//!   stack (moving-percentile filtering → Vivaldi → application-level update
//!   heuristics) exposed as a sans-I/O engine, plus its configuration types.
//! * [`nc_proto`] — the protocol boundary: versioned [`ProbeRequest`] /
//!   [`ProbeResponse`] wire messages, the typed [`Event`] stream, and
//!   [`NodeSnapshot`] for persist/restore.
//! * [`nc_vivaldi`], [`nc_filters`], [`nc_change`], [`nc_stats`] — the
//!   individual building blocks, usable on their own.
//! * [`nc_netsim`] — the synthetic PlanetLab-style workload and simulator
//!   used by the evaluation (itself a driver of the sans-I/O engine).
//! * [`nc_query`] — the read path over live coordinates: a sharded Z-order
//!   [`CoordinateIndex`] serving exact k-nearest-node, closest-replica and
//!   centroid/cluster queries, fed from the sim's event stream or a
//!   runtime's [`QueryHandle`] snapshots.
//! * [`nc_transport`] — the deployment layer: a threaded UDP runtime
//!   driving the engine over real sockets (binary datagrams, snapshot
//!   persistence, the `nc-node` binary) plus a delay-injecting loopback
//!   harness for tests and demos.
//! * [`nc_experiments`] — the harness that regenerates every table and
//!   figure of the paper.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction details.
//!
//! # Quickstart
//!
//! A node is driven through wire messages and observed through events; no
//! sockets or clocks are baked in:
//!
//! ```
//! use stable_network_coordinates::{NodeConfig, StableNode};
//!
//! let mut a: StableNode<&str> = StableNode::new(NodeConfig::paper_defaults());
//! let mut b: StableNode<&str> = StableNode::new(NodeConfig::paper_defaults());
//!
//! // One full probe exchange: a → b and back, timed by the driver.
//! let request = a.probe_request_for("peer-b", 0);
//! let mut response = b.respond(&request);
//! response.rtt_ms = 42.0; // measured by the transport
//! let events = a.handle_response(&response);
//! assert!(!events.is_empty());
//! println!("estimated RTT: {:.1} ms", a.estimate_rtt_ms(b.system_coordinate()));
//! ```

// Lint policy (missing_docs, broken doc links, clippy set) is centralized
// in the workspace manifest: [workspace.lints] + `lints.workspace = true`.

pub use nc_change;
pub use nc_experiments;
pub use nc_filters;
pub use nc_netsim;
pub use nc_proto;
pub use nc_query;
pub use nc_stats;
pub use nc_transport;
pub use nc_vivaldi;
pub use stable_nc;

pub use nc_query::{CoordinateIndex, QueryConfig, QueryHandle, QueryMatch};
pub use stable_nc::{
    ApplicationUpdate, Coordinate, Event, FilterConfig, GossipEntry, HeuristicConfig, NodeConfig,
    NodeConfigBuilder, NodeConfigError, NodeSnapshot, NodeView, OutlierGateConfig, PeerView,
    ProbeRequest, ProbeResponse, StableNode, VivaldiConfig, WireError, WireMessage,
    PROTOCOL_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_compose() {
        let config = NodeConfig::builder()
            .filter(FilterConfig::paper_mp())
            .heuristic(HeuristicConfig::paper_energy())
            .build();
        let node: StableNode<u8> = StableNode::new(config);
        assert_eq!(node.system_coordinate().dimensions(), 3);
    }

    #[test]
    fn facade_exposes_the_query_layer() {
        let mut index: CoordinateIndex<u8> =
            CoordinateIndex::new(QueryConfig::default()).expect("default query config validates");
        index
            .update(
                7,
                &Coordinate::new([1.0, 2.0, 3.0]).expect("finite coordinate"),
            )
            .expect("update tracks the node");
        let origin = Coordinate::new([0.0, 0.0, 0.0]).expect("finite coordinate");
        let near: QueryMatch<u8> = index
            .nearest(&origin)
            .expect("query succeeds")
            .expect("one node is tracked");
        assert_eq!(near.id, 7);
    }

    #[test]
    fn facade_exposes_the_wire_layer() {
        let request: ProbeRequest<u8> = ProbeRequest::new(1, 0, 0);
        assert_eq!(request.version, PROTOCOL_VERSION);
        let decoded = ProbeRequest::<u8>::decode(&request.encode()).unwrap();
        assert_eq!(decoded, request);
    }
}
