//! Stable and Accurate Network Coordinates — workspace façade.
//!
//! This crate re-exports the public API of the workspace so that examples,
//! integration tests and downstream users can depend on a single package:
//!
//! * [`stable_nc`] — the paper's contribution: the [`StableNode`] coordinate
//!   stack (moving-percentile filtering → Vivaldi → application-level update
//!   heuristics) and its configuration types.
//! * [`nc_vivaldi`], [`nc_filters`], [`nc_change`], [`nc_stats`] — the
//!   individual building blocks, usable on their own.
//! * [`nc_netsim`] — the synthetic PlanetLab-style workload and simulator
//!   used by the evaluation.
//! * [`nc_experiments`] — the harness that regenerates every table and
//!   figure of the paper.
//!
//! See the repository `README.md` for a tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction details.
//!
//! # Quickstart
//!
//! ```
//! use stable_network_coordinates::{NodeConfig, StableNode};
//!
//! let mut node: StableNode<&str> = StableNode::new(NodeConfig::paper_defaults());
//! let remote = stable_network_coordinates::Coordinate::new(vec![20.0, 30.0, 0.0]).unwrap();
//! node.observe("peer-a", remote.clone(), 0.5, 42.0);
//! println!("estimated RTT: {:.1} ms", node.estimate_rtt_ms(&remote));
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub use nc_change;
pub use nc_experiments;
pub use nc_filters;
pub use nc_netsim;
pub use nc_stats;
pub use nc_vivaldi;
pub use stable_nc;

pub use stable_nc::{
    ApplicationUpdate, Coordinate, FilterConfig, HeuristicConfig, NodeConfig, NodeConfigBuilder,
    ObservationOutcome, StableNode, VivaldiConfig,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_reexports_compose() {
        let config = NodeConfig::builder()
            .filter(FilterConfig::paper_mp())
            .heuristic(HeuristicConfig::paper_energy())
            .build();
        let node: StableNode<u8> = StableNode::new(config);
        assert_eq!(node.system_coordinate().dimensions(), 3);
    }
}
