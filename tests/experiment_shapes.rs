//! Integration tests asserting the qualitative "shape" of the paper's
//! headline results at quick scale: who wins, in which direction the sweeps
//! move, and that both enhancements contribute.

use nc_experiments::{fig04, fig06, fig13, table1};

#[test]
fn figure4_shape_short_histories_predict_best() {
    let result = fig04::run(fig04::Fig04Config::quick());
    let h1 = result.median_for(1).expect("h=1 swept");
    let h4 = result.median_for(4).expect("h=4 swept");
    assert!(h4 < h1, "h=4 ({h4:.3}) must beat h=1 ({h1:.3})");
}

#[test]
fn table1_shape_mp_beats_ewma_and_raw() {
    let result = table1::run(table1::Table1Config::quick());
    let mp = result.row("MP Filter").unwrap();
    let none = result.row("No Filter").unwrap();
    let ewma = result.row("alpha=0.20").unwrap();
    assert!(mp.instability < none.instability);
    assert!(mp.median_relative_error <= none.median_relative_error);
    assert!(mp.median_relative_error <= ewma.median_relative_error);
}

#[test]
fn figure6_shape_confidence_building_helps_clusters() {
    let result = fig06::run(fig06::Fig06Config::quick());
    assert!(result.with_building.steady_state_mean() > result.without_building.steady_state_mean());
}

#[test]
fn figure13_shape_both_enhancements_reduce_error_and_instability() {
    let result = fig13::run(fig13::Fig13Config::quick());
    // Filter alone helps stability; heuristic on top helps further.
    assert!(result.instability("raw-mp") < result.instability("raw-nofilter"));
    assert!(result.instability("energy+mp") < result.instability("raw-mp"));
    // The fully enhanced stack reduces the tail error versus the original.
    assert!(result.median_p95_error("energy+mp") < result.median_p95_error("raw-nofilter"));
    assert!(result.instability_reduction_percent() > 50.0);
}
