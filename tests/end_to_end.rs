//! Cross-crate integration tests: the full pipeline from synthetic workload
//! through filters, Vivaldi, change detection and metric collection.

use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::sim::{SimConfig, Simulator};
use nc_netsim::trace::{TraceConfig, TraceGenerator};
use stable_network_coordinates::{
    Coordinate, FilterConfig, HeuristicConfig, NodeConfig, StableNode,
};

fn quick_workload() -> PlanetLabConfig {
    PlanetLabConfig::small(16).with_seed(99)
}

fn quick_schedule() -> SimConfig {
    SimConfig::new(1_500.0, 5.0)
        .with_measurement_start(900.0)
        .with_initial_neighbors(6)
}

#[test]
fn full_stack_embeds_a_synthetic_planetlab_mesh() {
    let report = Simulator::new(
        quick_workload(),
        quick_schedule(),
        vec![("paper".to_string(), NodeConfig::paper_defaults())],
    )
    .run();
    let metrics = report.config("paper").expect("configuration ran");
    // Every node took part and the embedding is far better than random:
    // median relative error well below 1.0.
    assert_eq!(metrics.nodes.len(), 16);
    let median_error = metrics.median_of_median_relative_error();
    assert!(
        median_error < 0.5,
        "median of per-node median relative error is {median_error:.3}"
    );
}

#[test]
fn paper_stack_dominates_original_vivaldi_on_identical_streams() {
    let report = Simulator::new(
        quick_workload(),
        quick_schedule(),
        vec![
            ("enhanced".to_string(), NodeConfig::paper_defaults()),
            ("original".to_string(), NodeConfig::original_vivaldi()),
        ],
    )
    .run();
    let enhanced = report.config("enhanced").unwrap();
    let original = report.config("original").unwrap();
    assert!(
        enhanced.aggregate_application_instability() < original.aggregate_application_instability(),
        "application-level stability: enhanced {:.1} vs original {:.1}",
        enhanced.aggregate_application_instability(),
        original.aggregate_application_instability()
    );
    assert!(
        enhanced.median_of_application_p95_relative_error()
            <= original.median_of_application_p95_relative_error() * 1.05,
        "tail accuracy must not regress: enhanced {:.3} vs original {:.3}",
        enhanced.median_of_application_p95_relative_error(),
        original.median_of_application_p95_relative_error()
    );
}

#[test]
fn stable_node_consumes_a_generated_trace_directly() {
    // The library is usable without the simulator: drive StableNodes from a
    // materialised trace, as a real deployment would from its own probes.
    let mut generator = TraceGenerator::new(TraceConfig::new(quick_workload(), 600.0, 1.0));
    let node_count = generator.topology().len();
    let mut nodes: Vec<StableNode<usize>> = (0..node_count)
        .map(|_| StableNode::new(NodeConfig::paper_defaults()))
        .collect();
    for record in generator.generate() {
        let (coord, err) = {
            let remote = &nodes[record.dst];
            (remote.system_coordinate().clone(), remote.error_estimate())
        };
        nodes[record.src].observe(record.dst, coord, err, record.rtt_ms);
    }
    // Estimates between converged nodes correlate with ground truth: closer
    // pairs get smaller estimates on average.
    let topology = generator.topology();
    let mut correct_orderings = 0;
    let mut comparisons = 0;
    for a in 0..node_count {
        for b in (a + 1)..node_count {
            for c in (b + 1)..node_count {
                let truth_ab = topology.base_rtt_ms(a, b);
                let truth_ac = topology.base_rtt_ms(a, c);
                if (truth_ab - truth_ac).abs() < 20.0 {
                    continue; // too close to call
                }
                let est_ab = nodes[a].estimate_rtt_ms(nodes[b].system_coordinate());
                let est_ac = nodes[a].estimate_rtt_ms(nodes[c].system_coordinate());
                comparisons += 1;
                if (truth_ab < truth_ac) == (est_ab < est_ac) {
                    correct_orderings += 1;
                }
            }
        }
    }
    assert!(comparisons > 50);
    let accuracy = correct_orderings as f64 / comparisons as f64;
    assert!(
        accuracy > 0.7,
        "coordinates should order {comparisons} distinguishable pairs correctly most of the time, got {accuracy:.2}"
    );
}

#[test]
fn every_filter_and_heuristic_combination_runs() {
    let filters = [
        FilterConfig::Raw,
        FilterConfig::paper_mp(),
        FilterConfig::MovingMedian { history: 4 },
        FilterConfig::Ewma { alpha: 0.1 },
        FilterConfig::Threshold { cutoff_ms: 1_000.0 },
    ];
    let heuristics = [
        HeuristicConfig::FollowSystem,
        HeuristicConfig::System { threshold_ms: 16.0 },
        HeuristicConfig::Application { threshold_ms: 16.0 },
        HeuristicConfig::Relative { threshold: 0.3, window: 8 },
        HeuristicConfig::Energy { threshold: 8.0, window: 8 },
        HeuristicConfig::ApplicationCentroid { threshold_ms: 16.0, window: 8 },
    ];
    let remote = Coordinate::new(vec![30.0, 40.0, 0.0]).unwrap();
    for filter in &filters {
        for heuristic in &heuristics {
            let config = NodeConfig::builder()
                .filter(filter.clone())
                .heuristic(heuristic.clone())
                .build();
            let mut node: StableNode<u32> = StableNode::new(config);
            for i in 0..200 {
                let rtt = if i % 37 == 0 { 4_000.0 } else { 60.0 + (i % 7) as f64 };
                node.observe(1, remote.clone(), 0.4, rtt);
            }
            assert!(node.observations() == 200, "{filter:?} + {heuristic:?}");
            assert!(
                node.system_coordinate().components().iter().all(|c| c.is_finite()),
                "{filter:?} + {heuristic:?} produced a non-finite coordinate"
            );
        }
    }
}

#[test]
fn warmup_protects_against_first_sample_outliers_end_to_end() {
    // §VI: the largest disruptions came from links whose first sample was an
    // extreme outlier. With warm-up enabled the displacement caused by such a
    // link is bounded by later, sane samples.
    let run = |warmup: u64| -> f64 {
        let mut node: StableNode<u32> = StableNode::new(
            NodeConfig::builder().warmup_samples(warmup).build(),
        );
        let remote = Coordinate::new(vec![10.0, 10.0, 10.0]).unwrap();
        // First contact with peer 7 is a 30-second outlier, then normal.
        node.observe(7, remote.clone(), 0.4, 30_000.0);
        for _ in 0..20 {
            node.observe(7, remote.clone(), 0.4, 35.0);
        }
        node.system_displacement_ms()
    };
    let without = run(0);
    let with = run(2);
    assert!(
        with < without,
        "warm-up should reduce the displacement caused by a first-sample outlier ({with:.1} vs {without:.1})"
    );
}
