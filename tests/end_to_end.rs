//! Cross-crate integration tests: the full pipeline from synthetic workload
//! through the wire protocol, filters, Vivaldi, change detection and metric
//! collection.

use nc_netsim::linkmodel::LinkModelConfig;
use nc_netsim::planetlab::PlanetLabConfig;
use nc_netsim::scenario::Scenario;
use nc_netsim::sim::{SimConfig, Simulator};
use nc_netsim::trace::{TraceConfig, TraceGenerator, TraceRecord};
use stable_network_coordinates::{
    Coordinate, Event, FilterConfig, HeuristicConfig, NodeConfig, NodeSnapshot, ProbeRequest,
    ProbeResponse, StableNode, WireError, WireMessage, PROTOCOL_VERSION,
};

fn quick_workload() -> PlanetLabConfig {
    PlanetLabConfig::small(16).with_seed(99)
}

fn quick_schedule() -> SimConfig {
    SimConfig::new(1_500.0, 5.0)
        .with_measurement_start(900.0)
        .with_initial_neighbors(6)
}

/// Drives one trace record through the full wire exchange.
fn exchange(nodes: &mut [StableNode<usize>], record: &TraceRecord) -> Vec<Event<usize>> {
    let now_ms = (record.time_s * 1_000.0) as u64;
    let request = nodes[record.src].probe_request_for(record.dst, now_ms);
    let mut response = nodes[record.dst].respond(&request);
    response.rtt_ms = record.rtt_ms;
    nodes[record.src].handle_response(&response)
}

#[test]
fn full_stack_embeds_a_synthetic_planetlab_mesh() {
    let report = Simulator::new(
        quick_workload(),
        quick_schedule(),
        vec![("paper".to_string(), NodeConfig::paper_defaults())],
    )
    .run();
    let metrics = report.config("paper").expect("configuration ran");
    // Every node took part and the embedding is far better than random:
    // median relative error well below 1.0.
    assert_eq!(metrics.nodes.len(), 16);
    let median_error = metrics.median_of_median_relative_error();
    assert!(
        median_error < 0.5,
        "median of per-node median relative error is {median_error:.3}"
    );
}

#[test]
fn paper_stack_dominates_original_vivaldi_on_identical_streams() {
    let report = Simulator::new(
        quick_workload(),
        quick_schedule(),
        vec![
            ("enhanced".to_string(), NodeConfig::paper_defaults()),
            ("original".to_string(), NodeConfig::original_vivaldi()),
        ],
    )
    .run();
    let enhanced = report.config("enhanced").unwrap();
    let original = report.config("original").unwrap();
    assert!(
        enhanced.aggregate_application_instability() < original.aggregate_application_instability(),
        "application-level stability: enhanced {:.1} vs original {:.1}",
        enhanced.aggregate_application_instability(),
        original.aggregate_application_instability()
    );
    assert!(
        enhanced.median_of_application_p95_relative_error()
            <= original.median_of_application_p95_relative_error() * 1.05,
        "tail accuracy must not regress: enhanced {:.3} vs original {:.3}",
        enhanced.median_of_application_p95_relative_error(),
        original.median_of_application_p95_relative_error()
    );
}

#[test]
fn stable_node_consumes_a_generated_trace_through_the_wire_api() {
    // The library is usable without the simulator: drive StableNodes from a
    // materialised trace via request/response exchanges, as a real
    // deployment would from its own probes.
    let mut generator = TraceGenerator::new(TraceConfig::new(quick_workload(), 600.0, 1.0));
    let node_count = generator.topology().len();
    let mut nodes: Vec<StableNode<usize>> = (0..node_count)
        .map(|_| StableNode::new(NodeConfig::paper_defaults()))
        .collect();
    for record in generator.generate() {
        exchange(&mut nodes, &record);
    }
    // Estimates between converged nodes correlate with ground truth: closer
    // pairs get smaller estimates on average.
    let topology = generator.topology();
    let mut correct_orderings = 0;
    let mut comparisons = 0;
    for a in 0..node_count {
        for b in (a + 1)..node_count {
            for c in (b + 1)..node_count {
                let truth_ab = topology.base_rtt_ms(a, b);
                let truth_ac = topology.base_rtt_ms(a, c);
                if (truth_ab - truth_ac).abs() < 20.0 {
                    continue; // too close to call
                }
                let est_ab = nodes[a].estimate_rtt_ms(nodes[b].system_coordinate());
                let est_ac = nodes[a].estimate_rtt_ms(nodes[c].system_coordinate());
                comparisons += 1;
                if (truth_ab < truth_ac) == (est_ab < est_ac) {
                    correct_orderings += 1;
                }
            }
        }
    }
    assert!(comparisons > 50);
    let accuracy = correct_orderings as f64 / comparisons as f64;
    assert!(
        accuracy > 0.7,
        "coordinates should order {comparisons} distinguishable pairs correctly most of the time, got {accuracy:.2}"
    );
}

#[test]
fn every_filter_and_heuristic_combination_runs() {
    let filters = [
        FilterConfig::Raw,
        FilterConfig::paper_mp(),
        FilterConfig::MovingMedian { history: 4 },
        FilterConfig::Ewma { alpha: 0.1 },
        FilterConfig::Threshold { cutoff_ms: 1_000.0 },
    ];
    let heuristics = [
        HeuristicConfig::FollowSystem,
        HeuristicConfig::System { threshold_ms: 16.0 },
        HeuristicConfig::Application { threshold_ms: 16.0 },
        HeuristicConfig::Relative {
            threshold: 0.3,
            window: 8,
        },
        HeuristicConfig::Energy {
            threshold: 8.0,
            window: 8,
        },
        HeuristicConfig::ApplicationCentroid {
            threshold_ms: 16.0,
            window: 8,
        },
    ];
    let remote = Coordinate::new(vec![30.0, 40.0, 0.0]).unwrap();
    for filter in &filters {
        for heuristic in &heuristics {
            let config = NodeConfig::builder()
                .filter(filter.clone())
                .heuristic(heuristic.clone())
                .build();
            let mut node: StableNode<u32> = StableNode::new(config);
            for i in 0..200u64 {
                let rtt = if i % 37 == 0 {
                    4_000.0
                } else {
                    60.0 + (i % 7) as f64
                };
                let request = node.probe_request_for(1, i);
                let mut response = ProbeResponse::new(1, &request, remote.clone(), 0.4);
                response.rtt_ms = rtt;
                node.handle_response(&response);
            }
            assert!(
                node.view().observations == 200,
                "{filter:?} + {heuristic:?}"
            );
            assert!(
                node.system_coordinate()
                    .components()
                    .iter()
                    .all(|c| c.is_finite()),
                "{filter:?} + {heuristic:?} produced a non-finite coordinate"
            );
        }
    }
}

#[test]
fn warmup_protects_against_first_sample_outliers_end_to_end() {
    // §VI: the largest disruptions came from links whose first sample was an
    // extreme outlier. With warm-up enabled the displacement caused by such a
    // link is bounded by later, sane samples.
    let run = |warmup: u64| -> f64 {
        let mut node: StableNode<u32> =
            StableNode::new(NodeConfig::builder().warmup_samples(warmup).build());
        let remote = Coordinate::new(vec![10.0, 10.0, 10.0]).unwrap();
        // First contact with peer 7 is a 30-second outlier, then normal.
        let send = |node: &mut StableNode<u32>, rtt: f64| {
            let request = node.probe_request_for(7, 0);
            let mut response = ProbeResponse::new(7, &request, remote.clone(), 0.4);
            response.rtt_ms = rtt;
            node.handle_response(&response);
        };
        send(&mut node, 30_000.0);
        for _ in 0..20 {
            send(&mut node, 35.0);
        }
        node.view().system_displacement_ms
    };
    let without = run(0);
    let with = run(2);
    assert!(
        with < without,
        "warm-up should reduce the displacement caused by a first-sample outlier ({with:.1} vs {without:.1})"
    );
}

#[test]
fn wire_messages_round_trip_across_crate_boundaries() {
    // Serde round trips at the integration level: request, response and
    // snapshot all survive encode → decode bit-exactly.
    let request: ProbeRequest<usize> = ProbeRequest::new(3, 17, 123_456);
    assert_eq!(
        ProbeRequest::<usize>::decode(&request.encode()).unwrap(),
        request
    );

    let mut node: StableNode<usize> = StableNode::new(NodeConfig::paper_defaults());
    let response = {
        let mut response = node.respond(&ProbeRequest::new(0, 17, 9));
        response.rtt_ms = 55.5;
        response
    };
    assert_eq!(
        ProbeResponse::<usize>::decode(&response.encode()).unwrap(),
        response
    );

    node.handle_response(&response);
    let snapshot = node.snapshot();
    assert_eq!(
        NodeSnapshot::<usize>::decode(&snapshot.encode()).unwrap(),
        snapshot
    );
}

#[test]
fn wire_version_mismatches_are_rejected_not_misread() {
    let mut request: ProbeRequest<usize> = ProbeRequest::new(1, 1, 1);
    request.version = PROTOCOL_VERSION + 1;
    assert!(matches!(
        ProbeRequest::<usize>::decode(&request.encode()),
        Err(WireError::VersionMismatch { found, .. }) if found == PROTOCOL_VERSION + 1
    ));

    let node: StableNode<usize> = StableNode::new(NodeConfig::paper_defaults());
    let mut snapshot = node.snapshot();
    snapshot.version = PROTOCOL_VERSION + 2;
    assert!(matches!(
        NodeSnapshot::<usize>::decode(&snapshot.encode()),
        Err(WireError::VersionMismatch { found, .. }) if found == PROTOCOL_VERSION + 2
    ));
}

#[test]
fn node_snapshotted_mid_run_replays_to_identical_coordinates() {
    // The acceptance scenario: run a real workload, persist one node
    // halfway through, restore it, and replay the remaining trace into both
    // — coordinates and event streams must match exactly.
    let mut generator = TraceGenerator::new(TraceConfig::new(quick_workload(), 400.0, 1.0));
    let node_count = generator.topology().len();
    let mut nodes: Vec<StableNode<usize>> = (0..node_count)
        .map(|_| StableNode::new(NodeConfig::paper_defaults()))
        .collect();

    let records = generator.generate();
    let half = records.len() / 2;
    for record in &records[..half] {
        exchange(&mut nodes, record);
    }

    // Persist node 0 through the serialized wire form.
    let blob = nodes[0].snapshot().encode();
    let snapshot = NodeSnapshot::<usize>::decode(&blob).expect("snapshot decodes");
    let mut restored =
        StableNode::restore(NodeConfig::paper_defaults(), &snapshot).expect("same config restores");

    // Replay the second half into the live mesh; mirror every response that
    // node 0 digests into the restored copy.
    for record in &records[half..] {
        if record.src == 0 {
            let now_ms = (record.time_s * 1_000.0) as u64;
            let request_live = nodes[0].probe_request_for(record.dst, now_ms);
            let request_restored = restored.probe_request_for(record.dst, now_ms);
            assert_eq!(
                request_live, request_restored,
                "probe schedules in lockstep"
            );
            let mut response = nodes[record.dst].respond(&request_live);
            response.rtt_ms = record.rtt_ms;
            let events_live = nodes[0].handle_response(&response);
            let events_restored = restored.handle_response(&response);
            assert_eq!(events_live, events_restored);
        } else {
            exchange(&mut nodes, record);
        }
    }

    assert_eq!(restored.system_coordinate(), nodes[0].system_coordinate());
    assert_eq!(
        restored.application_coordinate(),
        nodes[0].application_coordinate()
    );
    assert_eq!(
        restored.view().application_updates,
        nodes[0].view().application_updates
    );
}

#[test]
fn quarter_of_the_mesh_crash_restarts_and_reconverges() {
    // The churn acceptance scenario: 25% of the nodes crash at t = 1800 s,
    // restart from the snapshots taken at the instant of the crash at
    // t = 2100 s, and by the end of the run the mesh's accuracy is back to
    // within 10% of its pre-crash value.
    let workload = PlanetLabConfig::small(16).with_seed(99);
    let sim_config = SimConfig::new(3_000.0, 5.0)
        .with_measurement_start(0.0)
        .with_initial_neighbors(6);
    let crashed: Vec<usize> = vec![0, 1, 2, 3]; // 4 of 16 = 25%
    let scenario = Scenario::crash_restart(crashed.clone(), 1_800.0, 2_100.0);
    let report = Simulator::new(
        workload,
        sim_config,
        vec![("paper".to_string(), NodeConfig::paper_defaults())],
    )
    .with_scenario(scenario)
    .run();
    let metrics = report.config("paper").expect("configuration ran");

    let pre_crash = metrics
        .pooled_median_relative_error_between(1_500.0, 1_800.0)
        .expect("pre-crash samples exist");
    let end_of_run = metrics
        .pooled_median_relative_error_between(2_700.0, 3_000.0)
        .expect("post-restart samples exist");
    assert!(
        end_of_run <= pre_crash * 1.10,
        "median relative error must re-converge to within 10% of its \
         pre-crash value: pre {pre_crash:.4}, end {end_of_run:.4}"
    );

    // The restarted nodes really went down and really came back.
    for &node in &crashed {
        let times: Vec<f64> = metrics.nodes[node]
            .system_errors
            .iter()
            .map(|(t, _)| *t)
            .collect();
        assert!(
            !times.iter().any(|&t| (1_800.0..2_100.0).contains(&t)),
            "node {node} observed while down"
        );
        assert!(
            times.iter().filter(|&&t| t > 2_100.0).count() > 20,
            "node {node} resumed probing after its restart"
        );
    }
    // Survivors' probes of the dead quarter timed out and were reported.
    assert!(metrics.total_probes_lost() > 0);
}

#[test]
fn lossy_mesh_completes_with_probe_losses_reported() {
    // 5% per-direction packet loss: the run completes, ProbeLost counts
    // appear in the report, and the schedule never stalls — the embedding
    // still converges to a useful accuracy.
    let workload =
        quick_workload().with_link_config(LinkModelConfig::default().with_loss_probability(0.05));
    let report = Simulator::new(
        workload,
        quick_schedule(),
        vec![("paper".to_string(), NodeConfig::paper_defaults())],
    )
    .run();
    let metrics = report.config("paper").expect("configuration ran");
    assert!(
        metrics.total_probes_lost() > 0,
        "5% loss must surface as ProbeLost counts in the report"
    );
    let observed: u64 = metrics.nodes.iter().map(|n| n.observations).sum();
    assert!(
        observed > 1_000,
        "the schedule must keep advancing through losses, got {observed} observations"
    );
    let median_error = metrics.median_of_median_relative_error();
    assert!(
        median_error < 0.6,
        "the embedding still converges under loss, got {median_error:.3}"
    );
}

#[test]
fn identical_seeds_give_byte_identical_reports_even_under_churn() {
    // Determinism acceptance: the same protocol seed and workload seed must
    // reproduce the serialized SimReport byte for byte — with loss, delay
    // asymmetry and a churn scenario all active.
    let run = || {
        let workload = PlanetLabConfig::small(12).with_seed(7).with_link_config(
            LinkModelConfig::default()
                .with_loss_probability(0.03)
                .with_delay_asymmetry(0.2),
        );
        let sim_config = SimConfig::new(1_000.0, 5.0)
            .with_measurement_start(0.0)
            .with_initial_neighbors(4)
            .with_protocol_seed(0xBEEF);
        let scenario = Scenario::crash_restart(vec![1, 2, 3], 400.0, 550.0);
        let report = Simulator::new(
            workload,
            sim_config,
            vec![
                ("paper".to_string(), NodeConfig::paper_defaults()),
                ("raw".to_string(), NodeConfig::original_vivaldi()),
            ],
        )
        .with_scenario(scenario)
        .run();
        serde::json::to_string(&report)
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "serialized reports diverged between runs");
    assert!(!first.is_empty());
}

#[test]
fn batch_handling_matches_the_event_loop() {
    let remote = Coordinate::new(vec![25.0, 5.0, 0.0]).unwrap();
    let responses: Vec<ProbeResponse<u32>> = (0..50u64)
        .map(|i| {
            let request = ProbeRequest::new(1, i, i);
            let mut response = ProbeResponse::new(1, &request, remote.clone(), 0.5);
            response.rtt_ms = 45.0 + (i % 9) as f64;
            response
        })
        .collect();

    let mut one_by_one: StableNode<u32> = StableNode::new(NodeConfig::paper_defaults());
    let mut batched: StableNode<u32> = StableNode::new(NodeConfig::paper_defaults());
    let mut sequential_events = Vec::new();
    for response in &responses {
        sequential_events.extend(one_by_one.handle_response(response));
    }
    let batch_events = batched.handle_many(&responses);
    assert_eq!(sequential_events, batch_events);
    assert_eq!(one_by_one.system_coordinate(), batched.system_coordinate());
}
